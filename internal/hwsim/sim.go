// Package hwsim executes compiled eHDL pipelines cycle by cycle.
//
// It is the repository's stand-in for the Alveo U50 FPGA: the generated
// pipeline IR is advanced one stage per clock, stage-enable signals
// implement the predicated control flow (Section 3.5 of the paper), and
// the map consistency machinery — WAR write shadows, RAW Flush
// Evaluation Blocks with elastic-buffer reload, and atomic primitives —
// follows Section 4.1. Packet framing geometry (Section 4.2) governs
// injection pacing and latency; the architectural semantics are shared
// with the reference interpreter (internal/vm) so results are
// differentially testable.
package hwsim

import (
	"errors"
	"fmt"
	"math/rand"

	"ehdl/internal/core"
	"ehdl/internal/ebpf"
	"ehdl/internal/faults"
	"ehdl/internal/maps"
	"ehdl/internal/obs"
	"ehdl/internal/protect"
	"ehdl/internal/vm"
)

// HazardPolicy selects how per-flow RAW hazards are handled.
type HazardPolicy int

// Hazard policies.
const (
	// PolicyFlush discards and re-executes younger packets when a write
	// hits an unconfirmed read (the paper's approach).
	PolicyFlush HazardPolicy = iota
	// PolicyStall conservatively bubbles the pipeline at every read with
	// potentially conflicting packets ahead, the FlowBlaze-style
	// alternative the paper evaluates and rejects.
	PolicyStall
)

// Config parameterises a simulation.
type Config struct {
	// ClockHz is the pipeline clock. 0 means 250 MHz.
	ClockHz float64
	// FlushReloadCycles is the dead time after a flush before victims
	// re-enter (the paper's K overhead of 4 cycles).
	FlushReloadCycles int
	// OOBAction is the verdict applied by the hardware bounds check when
	// an enabled stage accesses past the packet end. Defaults to
	// XDP_DROP.
	OOBAction ebpf.XDPAction
	// Policy selects flush (default) or stall hazard handling.
	Policy HazardPolicy
	// StrictCarryCheck verifies at run time that every register and
	// stack byte an op reads was carried by state pruning. Used by the
	// test suite to prove pruning soundness.
	StrictCarryCheck bool
	// InputQueuePackets bounds the ingress queue. 0 means 4096.
	InputQueuePackets int
	// Faults, when non-nil, injects deterministic hardware faults (SEU
	// bit flips in registers, stack bytes, packet data and map entries,
	// plus forced flush storms) every cycle. It also switches the
	// pipeline into degraded-execution mode: a packet whose fault-
	// corrupted state makes an operation unexecutable retires as
	// XDP_ABORTED instead of erroring the simulation.
	Faults *faults.Injector
	// WatchdogCycles trips a LivelockError when no packet retires for
	// this many cycles while work remains in flight — the hardware
	// watchdog against stall-policy and flush-reload livelock. 0
	// disables the watchdog. With Protection enabled a trip triggers a
	// drain-and-restart recovery instead of ending the simulation.
	WatchdogCycles int

	// Protection selects the map-memory codec (none, parity, ECC). Any
	// level other than none also arms the background scrubber and the
	// checkpointed drain-and-restart recovery sequence.
	Protection protect.Level
	// ScrubCyclesPerWord is the scrubber budget: one protected word is
	// checked every this many clock cycles. 0 means 8.
	ScrubCyclesPerWord int
	// MaxRecoveries bounds drain-and-restart attempts between clean
	// scrub passes; exceeding it ends the run with a RecoveryError. 0
	// means 8; negative means unbounded.
	MaxRecoveries int
	// RecoveryBackoffCycles is the base of the exponential input-hold
	// schedule after a recovery (base << attempt-1). 0 means 256.
	RecoveryBackoffCycles int
	// RecoveryJitterSeed, when non-zero, adds a seeded jitter in
	// [0, RecoveryBackoffCycles) to every recovery backoff so that
	// replicas or fleet devices faulted on the same cycle do not re-
	// enter service in lockstep. 0 (the default) keeps the exact
	// deterministic schedule, preserving existing golden runs. The
	// jittered hold is charged to RecoveryBackoffCycles accounting
	// exactly, and two simulators with the same seed draw the same
	// jitter sequence.
	RecoveryJitterSeed int64

	// Trace, when non-nil, receives the cycle-level event stream: frame
	// movement through stages, predicate outcomes, WAR-shadow captures,
	// flush episodes, map port operations, verdicts and the
	// protection/recovery machinery. Nil (the default) keeps the hot
	// path free of instrumentation beyond one pointer comparison.
	Trace *obs.Tracer
	// Metrics, when non-nil, accumulates pipeline metrics under the
	// hwsim.* names (see the Metric* constants). Nil disables metric
	// accounting entirely.
	Metrics *obs.Registry
}

func (c Config) clockHz() float64 {
	if c.ClockHz <= 0 {
		return 250e6
	}
	return c.ClockHz
}

func (c Config) reloadCycles() int {
	if c.FlushReloadCycles <= 0 {
		return 4
	}
	return c.FlushReloadCycles
}

func (c Config) oobAction() ebpf.XDPAction {
	if c.OOBAction == 0 {
		return ebpf.XDPDrop
	}
	return c.OOBAction
}

func (c Config) queueDepth() int {
	if c.InputQueuePackets <= 0 {
		return 4096
	}
	return c.InputQueuePackets
}

func (c Config) scrubCyclesPerWord() int {
	if c.ScrubCyclesPerWord <= 0 {
		return 8
	}
	return c.ScrubCyclesPerWord
}

func (c Config) maxRecoveries() int {
	switch {
	case c.MaxRecoveries == 0:
		return 8
	case c.MaxRecoveries < 0:
		return 0 // unbounded
	}
	return c.MaxRecoveries
}

// Result reports one packet's trip through the pipeline.
type Result struct {
	Seq             uint64
	Action          ebpf.XDPAction
	RedirectIfindex uint32
	Data            []byte
	LatencyCycles   uint64
	Flushed         int // times this packet was flushed and re-executed
}

// Stats aggregates a simulation run.
type Stats struct {
	Cycles         uint64
	Injected       uint64
	Completed      uint64
	QueueDrops     uint64
	Flushes        uint64
	FlushedPackets uint64
	StallCycles    uint64
	Actions        map[ebpf.XDPAction]uint64
	LatencySum     uint64
	LatencyMax     uint64

	// FaultsInjected counts faults the injector applied inside the
	// pipeline (SEU bit flips and forced flush storms).
	FaultsInjected uint64
	// MalformedDropped counts packets whose verdict was forced by the
	// hardware bounds check (out-of-bounds packet access), the path
	// malformed ingress traffic takes.
	MalformedDropped uint64
	// QueueOverflows counts episodes in which the ingress queue hit its
	// bound (edge-triggered; QueueDrops counts individual packets).
	QueueOverflows uint64
	// WatchdogTrips counts livelock detections by the watchdog.
	WatchdogTrips uint64
	// AbortedFaults counts packets retired as XDP_ABORTED because
	// injected faults made their state unexecutable.
	AbortedFaults uint64

	// Protection and recovery counters (all zero at LevelNone).

	// WordsChecked counts protected-word syndrome decodes (lookup path
	// and scrubber combined).
	WordsChecked uint64
	// CorrectedWords counts single-bit upsets corrected in place.
	CorrectedWords uint64
	// UncorrectableWords counts detected errors beyond the codec's
	// correction capability (each one triggers a recovery).
	UncorrectableWords uint64
	// ScrubWords and ScrubPasses count background-scrubber progress.
	ScrubWords  uint64
	ScrubPasses uint64
	// CheckpointsTaken counts known-good map snapshots recorded.
	CheckpointsTaken uint64
	// Recoveries counts drain-and-restart sequences performed.
	Recoveries uint64
	// RecoveryAborted counts in-flight packets drained as XDP_ABORTED
	// by recoveries (a subset of Actions[XDPAborted]).
	RecoveryAborted uint64
	// RecoveryBackoffCycles accumulates the input-hold time charged by
	// the exponential backoff schedule.
	RecoveryBackoffCycles uint64
}

// Add returns the sum of two stats snapshots, field by field. The NIC
// shell uses it to fold a retired pipeline's counters into the running
// aggregate across a live update.
func (s Stats) Add(o Stats) Stats {
	out := s
	out.Cycles += o.Cycles
	out.Injected += o.Injected
	out.Completed += o.Completed
	out.QueueDrops += o.QueueDrops
	out.Flushes += o.Flushes
	out.FlushedPackets += o.FlushedPackets
	out.StallCycles += o.StallCycles
	out.LatencySum += o.LatencySum
	if o.LatencyMax > out.LatencyMax {
		out.LatencyMax = o.LatencyMax
	}
	out.Actions = map[ebpf.XDPAction]uint64{}
	for a, n := range s.Actions {
		out.Actions[a] += n
	}
	for a, n := range o.Actions {
		out.Actions[a] += n
	}
	out.FaultsInjected += o.FaultsInjected
	out.MalformedDropped += o.MalformedDropped
	out.QueueOverflows += o.QueueOverflows
	out.WatchdogTrips += o.WatchdogTrips
	out.AbortedFaults += o.AbortedFaults
	out.WordsChecked += o.WordsChecked
	out.CorrectedWords += o.CorrectedWords
	out.UncorrectableWords += o.UncorrectableWords
	out.ScrubWords += o.ScrubWords
	out.ScrubPasses += o.ScrubPasses
	out.CheckpointsTaken += o.CheckpointsTaken
	out.Recoveries += o.Recoveries
	out.RecoveryAborted += o.RecoveryAborted
	out.RecoveryBackoffCycles += o.RecoveryBackoffCycles
	return out
}

// Delta returns the counters accumulated since the base snapshot
// (LatencyMax carries over: it is a high-water mark, not a counter).
func (s Stats) Delta(base Stats) Stats {
	out := s
	out.Cycles -= base.Cycles
	out.Injected -= base.Injected
	out.Completed -= base.Completed
	out.QueueDrops -= base.QueueDrops
	out.Flushes -= base.Flushes
	out.FlushedPackets -= base.FlushedPackets
	out.StallCycles -= base.StallCycles
	out.LatencySum -= base.LatencySum
	out.Actions = map[ebpf.XDPAction]uint64{}
	for a, n := range s.Actions {
		if d := n - base.Actions[a]; d > 0 {
			out.Actions[a] = d
		}
	}
	out.FaultsInjected -= base.FaultsInjected
	out.MalformedDropped -= base.MalformedDropped
	out.QueueOverflows -= base.QueueOverflows
	out.WatchdogTrips -= base.WatchdogTrips
	out.AbortedFaults -= base.AbortedFaults
	out.WordsChecked -= base.WordsChecked
	out.CorrectedWords -= base.CorrectedWords
	out.UncorrectableWords -= base.UncorrectableWords
	out.ScrubWords -= base.ScrubWords
	out.ScrubPasses -= base.ScrubPasses
	out.CheckpointsTaken -= base.CheckpointsTaken
	out.Recoveries -= base.Recoveries
	out.RecoveryAborted -= base.RecoveryAborted
	out.RecoveryBackoffCycles -= base.RecoveryBackoffCycles
	return out
}

// Mpps converts the completed-packet count to millions of packets per
// second at the configured clock.
func (s Stats) Mpps(clockHz float64) float64 {
	if s.Cycles == 0 {
		return 0
	}
	seconds := float64(s.Cycles) / clockHz
	return float64(s.Completed) / seconds / 1e6
}

// AvgLatencyNs returns the mean forwarding latency in nanoseconds.
func (s Stats) AvgLatencyNs(clockHz float64) float64 {
	if s.Completed == 0 {
		return 0
	}
	return float64(s.LatencySum) / float64(s.Completed) / clockHz * 1e9
}

// job is one in-flight packet and its architectural state.
type job struct {
	seq        uint64
	st         *vm.State
	enabled    []uint64 // block-enable bitset
	done       bool
	action     ebpf.XDPAction
	redirect   uint32
	injectedAt uint64
	frames     int
	stage      int // current stage, -1 while queued
	execStage  int // last stage whose ops ran (guards stalls)

	lookupAddr map[int]uint64 // mapID -> last lookup value address
	lookupKey  map[int]string // mapID -> last lookup key
	reads      map[int]map[string]bool // mapID -> unconfirmed read keys (flush eval addresses)
	flushed    int
	commits    int // committed map mutations (atomic/update/delete/store)

	snapshot *snapshot // taken entering the elastic-buffer stage
	initial  *snapshot
}

// snapshot captures everything needed to replay a packet from a stage.
type snapshot struct {
	st         *vm.State
	enabled    []uint64
	lookupAddr map[int]uint64
	lookupKey  map[int]string
	done       bool
	action     ebpf.XDPAction
	redirect   uint32
	commits    int
}

func (j *job) capture() *snapshot {
	la := make(map[int]uint64, len(j.lookupAddr))
	for k, v := range j.lookupAddr {
		la[k] = v
	}
	lk := make(map[int]string, len(j.lookupKey))
	for k, v := range j.lookupKey {
		lk[k] = v
	}
	return &snapshot{
		st:         j.st.Clone(),
		enabled:    append([]uint64(nil), j.enabled...),
		lookupAddr: la,
		lookupKey:  lk,
		done:       j.done,
		action:     j.action,
		redirect:   j.redirect,
		commits:    j.commits,
	}
}

func (j *job) restore(s *snapshot) {
	j.st = s.st.Clone()
	j.enabled = append(j.enabled[:0], s.enabled...)
	j.lookupAddr = make(map[int]uint64, len(s.lookupAddr))
	for k, v := range s.lookupAddr {
		j.lookupAddr[k] = v
	}
	j.lookupKey = make(map[int]string, len(s.lookupKey))
	for k, v := range s.lookupKey {
		j.lookupKey[k] = v
	}
	j.reads = map[int]map[string]bool{}
	j.done = s.done
	j.action = s.action
	j.redirect = s.redirect
	j.commits = s.commits
}

// warShadow lets older in-flight packets keep reading the pre-write
// value of a map entry for WARDepth cycles after a younger packet's
// write (the delay registers of Figure 6).
type warShadow struct {
	mapID     int
	key       string
	oldValue  []byte // nil: the entry did not exist
	hadEntry  bool
	writerSeq uint64
	expires   uint64 // cycle after which the shadow is gone
}

// Sim is one instantiated pipeline.
type Sim struct {
	pl   *core.Pipeline
	cfg  Config
	env  *vm.Env
	exec *vm.ExecContext

	frameBytes int
	stages     []*job
	queue      []*job
	reload     []*job // flush victims awaiting re-entry
	seq        uint64
	cycle      uint64

	// Stall machinery: stages below stallPoint hold while the condition
	// drains. -1 means no stall.
	stallPoint   int
	reloadDelay  int // dead cycles before reload re-entry
	stallDrainTo int // for PolicyStall: hold until stages [stallPoint, stallDrainTo] empty

	injectGap int // cycles until the input accepts the next packet

	queueFull  bool   // last Inject hit the bound (overflow episode edge)
	lastRetire uint64 // cycle of the last packet retirement (watchdog)

	shadows []warShadow

	mapBlockOf map[int]*core.MapBlock

	// Protection and recovery state: the per-map codec wrappers
	// (indexed by mapID), the background scrubber, the last known-good
	// checkpoint, and the bounded-retry bookkeeping. recoveryHold gates
	// the input while the post-recovery backoff elapses.
	protected            []*maps.Protected
	scrubber             *protect.Scrubber
	checkpoint           *maps.SetSnapshot
	recoveryAttempts     int
	recoveryHold         uint64
	handledUncorrectable uint64
	// jitterRng draws the seeded recovery-backoff jitter; nil keeps the
	// exact exponential schedule.
	jitterRng *rand.Rand

	stats      Stats
	onComplete func(Result)
	onMapWrite func(mapID int, key string, deleted bool)
	keepData   bool
	quiesced   bool

	// probes is the observability surface, nil unless Config.Trace or
	// Config.Metrics opted in (see trace.go).
	probes *probes

	// readStages/writeStages per map pre-resolved for the flush block.
	strictErr error

	// debug receives trace lines when set (tests only).
	debug func(string)
}

// New instantiates a pipeline simulation with fresh maps.
func New(pl *core.Pipeline, cfg Config) (*Sim, error) {
	env, err := vm.NewEnv(pl.Transformed)
	if err != nil {
		return nil, err
	}
	return NewWithEnv(pl, cfg, env)
}

// NewWithEnv instantiates a simulation over an existing environment
// (shared maps, custom clock).
func NewWithEnv(pl *core.Pipeline, cfg Config, env *vm.Env) (*Sim, error) {
	if len(pl.Stages) == 0 {
		return nil, fmt.Errorf("hwsim: empty pipeline")
	}
	s := &Sim{
		pl:           pl,
		cfg:          cfg,
		env:          env,
		exec:         &vm.ExecContext{Env: env, Mem: vm.NewMemSpace(pl.Transformed, env.Maps)},
		frameBytes:   pl.Options.FrameBytes,
		stages:       make([]*job, len(pl.Stages)),
		stallPoint:   -1,
		stallDrainTo: -1,
		mapBlockOf:   map[int]*core.MapBlock{},
	}
	if s.frameBytes <= 0 {
		s.frameBytes = 64
	}
	for i := range pl.Maps {
		s.mapBlockOf[pl.Maps[i].MapID] = &pl.Maps[i]
	}
	if env.Now == nil {
		// The hardware clock: cycle count scaled to nanoseconds.
		clock := cfg.clockHz()
		env.Now = func() uint64 {
			return uint64(float64(s.cycle) / clock * 1e9)
		}
	}
	s.stats.Actions = map[ebpf.XDPAction]uint64{}
	if cfg.RecoveryJitterSeed != 0 {
		s.jitterRng = rand.New(rand.NewSource(cfg.RecoveryJitterSeed))
	}
	s.initProtection()
	if cfg.Trace != nil || cfg.Metrics != nil {
		s.probes = newProbes(cfg.Trace, cfg.Metrics, env.Maps.Len(), len(pl.Stages))
	}
	return s, nil
}

// Tracer returns the attached event tracer (nil when tracing is off).
func (s *Sim) Tracer() *obs.Tracer { return s.cfg.Trace }

// Maps exposes the simulated NIC's map memory (the host interface).
func (s *Sim) Maps() *maps.Set { return s.env.Maps }

// Stats returns a copy of the counters so far. The Actions map is
// deep-copied so the snapshot stays frozen (usable as a Delta base)
// while the simulator keeps counting.
func (s *Sim) Stats() Stats {
	s.syncProtectionStats()
	out := s.stats
	out.Actions = make(map[ebpf.XDPAction]uint64, len(s.stats.Actions))
	for a, n := range s.stats.Actions {
		out.Actions[a] = n
	}
	return out
}

// Cycle returns the current clock cycle.
func (s *Sim) Cycle() uint64 { return s.cycle }

// OnComplete registers a callback invoked as packets retire.
func (s *Sim) OnComplete(fn func(Result)) { s.onComplete = fn }

// OnMapWrite registers a callback invoked at every committed map
// mutation — update and delete helpers as well as pointer stores and
// atomics through a looked-up entry, which bypass the map's Update
// method entirely. A live-update controller uses it as the delta log
// feed: the (mapID, key) pair names the entry to re-copy; deleted marks
// removals. Nil disables the hook.
func (s *Sim) OnMapWrite(fn func(mapID int, key string, deleted bool)) { s.onMapWrite = fn }

// noteMapWrite fires the OnMapWrite hook for one committed mutation.
func (s *Sim) noteMapWrite(mapID int, key string, deleted bool) {
	if s.onMapWrite != nil {
		s.onMapWrite(mapID, key, deleted)
	}
}

// KeepData makes results carry the final packet bytes.
func (s *Sim) KeepData(keep bool) { s.keepData = keep }

// InputFree reports whether the ingress can accept a packet this cycle.
func (s *Sim) InputFree() bool {
	return len(s.queue) < s.cfg.queueDepth()
}

// Quiesce closes the ingress: Inject refuses every packet without
// counting a drop (the frame is the caller's to hold, not lost), while
// in-flight work keeps stepping to retirement. The cutover stage of a
// live update quiesces the old pipeline so it drains to empty.
func (s *Sim) Quiesce() { s.quiesced = true }

// Resume reopens a quiesced ingress.
func (s *Sim) Resume() { s.quiesced = false }

// Quiesced reports whether the ingress is closed.
func (s *Sim) Quiesced() bool { return s.quiesced }

// Drained reports whether a pipeline has fully drained: no queued,
// in-flight, or flush-recalled work remains.
func (s *Sim) Drained() bool { return !s.Busy() }

// Now returns the nanosecond clock visible to time helpers.
func (s *Sim) Now() uint64 { return s.env.Now() }

// NextSeq returns the sequence number the next accepted packet will
// carry. Flush recall can retire packets out of injection order, so
// consumers matching completions against injections (the live-update
// canary) key by sequence number rather than FIFO position.
func (s *Sim) NextSeq() uint64 { return s.seq }

// Inject queues a packet for processing. It returns false (and counts a
// drop) when the input queue is full, or silently when quiesced.
func (s *Sim) Inject(data []byte) bool {
	if s.quiesced {
		return false
	}
	if !s.InputFree() {
		s.stats.QueueDrops++
		if !s.queueFull {
			s.queueFull = true
			s.stats.QueueOverflows++
		}
		if s.probes != nil {
			s.probes.onQueueDrop(s.cycle, len(data))
		}
		return false
	}
	s.queueFull = false
	frames := (len(data) + s.frameBytes - 1) / s.frameBytes
	if frames < 1 {
		frames = 1
	}
	j := &job{
		seq:        s.seq,
		st:         vm.NewState(vm.NewPacket(data)),
		enabled:    make([]uint64, (len(s.pl.Blocks)+63)/64+1),
		injectedAt: s.cycle,
		frames:     frames,
		stage:      -1,
		execStage:  -1,
		lookupAddr: map[int]uint64{},
		lookupKey:  map[int]string{},
		reads:      map[int]map[string]bool{},
	}
	s.seq++
	setBit(j.enabled, 0) // the entry block is always enabled
	j.initial = j.capture()
	s.queue = append(s.queue, j)
	s.stats.Injected++
	if s.probes != nil {
		s.probes.onInject(s.cycle, j.seq, len(data), frames)
	}
	return true
}

func setBit(b []uint64, i int)      { b[i/64] |= 1 << (i % 64) }
func hasBit(b []uint64, i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

// Busy reports whether any work remains in flight.
func (s *Sim) Busy() bool {
	if len(s.queue) > 0 || len(s.reload) > 0 {
		return true
	}
	for _, j := range s.stages {
		if j != nil {
			return true
		}
	}
	return false
}

// RunToCompletion steps the clock until the pipeline drains, with a
// safety bound.
func (s *Sim) RunToCompletion(maxCycles uint64) error {
	for n := uint64(0); s.Busy(); n++ {
		if n >= maxCycles {
			return fmt.Errorf("hwsim: pipeline did not drain within %d cycles", maxCycles)
		}
		if err := s.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Step advances the pipeline by one clock cycle.
func (s *Sim) Step() error {
	s.cycle++
	s.stats.Cycles++
	if s.recoveryEnabled() && s.checkpoint == nil {
		// Initial checkpoint, taken lazily on the first cycle so it
		// captures the host's setup-time map population but no faults.
		s.takeCheckpoint()
	}
	s.expireShadows()
	s.applyFaults()
	s.tickScrubber()

	last := len(s.stages) - 1

	// Retire the packet leaving the final stage.
	if j := s.stages[last]; j != nil {
		if s.probes != nil {
			s.probes.onStageExit(s.cycle, j, last)
		}
		s.complete(j)
	}

	// Advance the shift register, honouring an active stall point:
	// stages at or above the point advance, stages below hold.
	low := 0
	if s.stallPoint >= 0 {
		low = s.stallPoint
		s.stats.StallCycles++
	}
	for t := last; t > low; t-- {
		s.stages[t] = s.stages[t-1]
		s.stages[t-1] = nil
		if j := s.stages[t]; j != nil && s.probes != nil {
			s.probes.onStageExit(s.cycle, j, t-1)
			s.probes.onStageEnter(s.cycle, j, t)
		}
	}

	// Feed the stall point from the reload queue (after the dead time)
	// or release the stall when it has drained.
	if s.stallPoint >= 0 {
		s.serviceStall()
	}
	if s.stallPoint < 0 {
		s.injectFromQueue()
	}

	// Execute stage operations, oldest packets first so same-cycle
	// map effects resolve in age order.
	for t := last; t >= 0; t-- {
		j := s.stages[t]
		if j == nil || j.execStage == t {
			continue
		}
		// A reader held by PolicyStall defers its stage until release.
		if s.cfg.Policy == PolicyStall && s.stallPoint >= 0 && t == s.stallPoint-1 {
			continue
		}
		j.stage = t
		j.execStage = t
		if err := s.execStage(j, t); err != nil {
			if s.cfg.Faults != nil || errors.Is(err, errUncorrectableAccess) {
				// Degraded execution: the hardware has no error channel,
				// so a packet whose fault-corrupted state makes an op
				// unexecutable — or whose map entry decoded as
				// uncorrectable — latches XDP_ABORTED and keeps flowing.
				j.done = true
				j.action = ebpf.XDPAborted
				s.stats.AbortedFaults++
				continue
			}
			return err
		}
	}
	if s.probes != nil {
		occ := 0
		for _, j := range s.stages {
			if j != nil {
				occ++
			}
		}
		s.probes.endCycle(occ, len(s.queue))
	}
	if s.strictErr != nil {
		return s.strictErr
	}
	if err := s.maybeRecover(); err != nil {
		return err
	}
	if err := s.checkWatchdog(); err != nil {
		if s.recoveryEnabled() && errors.Is(err, ErrLivelock) {
			// The watchdog's reset line feeds the same drain-and-restart
			// sequence an uncorrectable word does.
			return s.recoverNow(err.Error())
		}
		return err
	}
	return nil
}

// serviceStall feeds flush victims back in at the stall point and lifts
// the stall once everything drained.
func (s *Sim) serviceStall() {
	if s.reloadDelay > 0 {
		s.reloadDelay--
		return
	}
	if len(s.reload) > 0 {
		if s.stages[s.stallPoint] == nil {
			j := s.reload[0]
			s.reload = s.reload[1:]
			s.stages[s.stallPoint] = j
			j.stage = s.stallPoint
			j.execStage = s.stallPoint - 1 // execute this stage now
			if s.probes != nil {
				s.probes.onStageEnter(s.cycle, j, s.stallPoint)
			}
		}
		return
	}
	if s.stallDrainTo >= 0 {
		// PolicyStall: wait until the hazard window is empty.
		for t := s.stallPoint; t <= s.stallDrainTo; t++ {
			if s.stages[t] != nil {
				return
			}
		}
		s.stallDrainTo = -1
	}
	s.stallPoint = -1
	if s.probes != nil {
		s.probes.onFlushEnd(s.cycle)
	}
}

// injectFromQueue moves the next queued packet into stage 0, honouring
// multi-frame pacing: an F-frame packet occupies the input for F cycles.
func (s *Sim) injectFromQueue() {
	if s.cycle < s.recoveryHold {
		// Post-recovery backoff: the input holds in reset while the
		// scrubber gets a chance to prove the store healthy again.
		return
	}
	if s.injectGap > 0 {
		s.injectGap--
		return
	}
	if len(s.queue) == 0 || s.stages[0] != nil {
		return
	}
	j := s.queue[0]
	s.queue = s.queue[1:]
	s.stages[0] = j
	j.stage = 0
	j.execStage = -1
	s.injectGap = j.frames - 1
	if s.probes != nil {
		s.probes.onStageEnter(s.cycle, j, 0)
	}
}

// complete retires a packet.
func (s *Sim) complete(j *job) {
	if s.cfg.Faults != nil && j.action > ebpf.XDPRedirect {
		// A fault-corrupted verdict register leaves the legal XDP range;
		// the shell treats any unknown verdict as an abort, like the
		// kernel does.
		j.action = ebpf.XDPAborted
	}
	latency := s.cycle - j.injectedAt
	s.lastRetire = s.cycle
	s.stats.Completed++
	if s.probes != nil {
		s.probes.onVerdict(s.cycle, j, latency)
	}
	s.stats.LatencySum += latency
	if latency > s.stats.LatencyMax {
		s.stats.LatencyMax = latency
	}
	s.stats.Actions[j.action]++
	if s.onComplete != nil {
		res := Result{
			Seq:             j.seq,
			Action:          j.action,
			RedirectIfindex: j.redirect,
			LatencyCycles:   latency,
			Flushed:         j.flushed,
		}
		if s.keepData {
			res.Data = append([]byte(nil), j.st.Pkt.Bytes()...)
		}
		s.onComplete(res)
	}
}

// expireShadows drops WAR shadows whose window has passed.
func (s *Sim) expireShadows() {
	out := s.shadows[:0]
	for _, sh := range s.shadows {
		if s.cycle <= sh.expires {
			out = append(out, sh)
		}
	}
	s.shadows = out
}

// flushVictims implements the Flush Evaluation Block's verdict
// (Section 4.1.2): discard and replay the younger packets whose stale
// read the write invalidated. Two groups are recalled, preserving
// per-key sequential order without replaying committed side effects:
//
//   - packets in [from, writeStage) whose unconfirmed read matches the
//     written key (the stale readers);
//   - every packet that has not yet reached the map's first read stage:
//     it may carry the same key, and letting it run ahead of the
//     re-injected victims would reorder same-key accesses. Such packets
//     cannot have committed map effects past the elastic buffer, so
//     their replay is side-effect free.
// When force is set (fault injection: a spurious Flush Evaluation
// verdict), the flush proceeds even without a matching stale reader;
// packets whose replay would repeat committed map effects are left
// flowing instead of recalled, so a forced flush is always safe.
func (s *Sim) flushVictims(from, writeStage, mapID int, key string, force bool) {
	minRead := writeStage
	if mb := s.mapBlockOf[mapID]; mb != nil {
		for _, r := range mb.ReadStages {
			if r < minRead {
				minRead = r
			}
		}
	}
	matched := false
	var victims []*job
	for t := writeStage - 1; t >= from; t-- {
		j := s.stages[t]
		if j == nil {
			continue
		}
		if j.reads[mapID][key] {
			matched = true
		} else if t > minRead || (t == minRead && j.execStage >= minRead) {
			// Already past the read (different key, or the read path was
			// disabled): safe to keep flowing ahead.
			continue
		}
		j.stage = t // the shift may have outrun the execution bookkeeping
		victims = append(victims, j)
		s.stages[t] = nil
	}
	if !matched && !force {
		// No stale reader after all: put the recalled packets back.
		for _, v := range victims {
			s.stages[v.stage] = v
		}
		return
	}
	// Victims were collected from high to low stages, i.e. oldest first:
	// re-injecting in this order preserves the pipeline's relative order.
	kept := victims[:0]
	for _, v := range victims {
		if from > 0 && v.stage == from && v.execStage < from {
			// Recalled on arrival at the elastic-buffer stage, before its
			// ops (and the snapshot capture) ran: the current state is the
			// entering state.
			v.snapshot = v.capture()
		}
		snap := v.snapshot
		if from == 0 || snap == nil {
			snap = v.initial
		}
		if v.commits != snap.commits {
			if force {
				// Replaying would repeat committed side effects; a real
				// flush never selects such a packet, so the forced one
				// must let it keep flowing.
				s.stages[v.stage] = v
				continue
			}
			if s.strictErr == nil {
				s.strictErr = fmt.Errorf("hwsim: flush from %d (write %d) would replay packet %d (stage %d, execStage %d) past %d committed map effects",
					from, writeStage, v.seq, v.stage, v.execStage, v.commits-snap.commits)
			}
		}
		v.restore(snap)
		v.flushed++
		v.execStage = from - 1
		if s.probes != nil {
			s.probes.onStageExit(s.cycle, v, v.stage)
		}
		kept = append(kept, v)
	}
	s.reload = append(append([]*job(nil), kept...), s.reload...)
	s.stallPoint = from
	s.stallDrainTo = -1
	s.reloadDelay = s.cfg.reloadCycles()
	s.stats.Flushes++
	s.stats.FlushedPackets += uint64(len(kept))
	if s.probes != nil {
		s.probes.onFlushBegin(s.cycle, writeStage, from, mapID, len(kept))
	}
}

// SetClock overrides the nanosecond clock visible to time helpers
// (bpf_ktime_get_ns); tests pin it for determinism.
func (s *Sim) SetClock(fn func() uint64) { s.env.Now = fn }
