package hwsim

import (
	"errors"
	"testing"

	"ehdl/internal/apps"
	"ehdl/internal/core"
	"ehdl/internal/ebpf"
	"ehdl/internal/maps"
	"ehdl/internal/pktgen"
	"ehdl/internal/protect"
)

// corruptDoubleBit plants a two-bit upset inside one 64-bit word of the
// first populated map entry — beyond SECDED's correction capability, so
// detection must quarantine the entry and trigger a recovery. Returns
// false when the app has no populated entry to damage.
func corruptDoubleBit(set *maps.Set) bool {
	for id := 0; id < set.Len(); id++ {
		m, _ := set.ByID(id)
		if m.Len() == 0 {
			continue
		}
		done := false
		m.Iterate(func(_, v []byte) bool {
			if len(v) == 0 {
				return true
			}
			// Both flips land in word 0 of the value.
			v[0] ^= 0x01
			if len(v) > 5 {
				v[5] ^= 0x10
			} else {
				v[0] ^= 0x02
			}
			done = true
			return false
		})
		if done {
			return true
		}
	}
	return false
}

func newAppSim(t *testing.T, app *apps.App, cfg Config) *Sim {
	t.Helper()
	prog, err := app.Program()
	if err != nil {
		t.Fatal(err)
	}
	pl, err := core.Compile(prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Setup(sim.Maps()); err != nil {
		t.Fatal(err)
	}
	sim.SetClock(func() uint64 { return 0 })
	return sim
}

// TestRecoveryDrainAndRestartEveryApp forces an uncorrectable map word
// mid-burst into every evaluation app and verifies the full recovery
// contract: the upset is detected, every in-flight frame drains as
// XDP_ABORTED with exact accounting, map memory right after the
// recovery equals the last known-good checkpoint, and the run finishes
// with every injected packet retired.
func TestRecoveryDrainAndRestartEveryApp(t *testing.T) {
	for _, app := range append(apps.All(), apps.Toy(), apps.LeakyBucket()) {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			cfg := Config{
				Protection:            protect.LevelECC,
				ScrubCyclesPerWord:    1,
				RecoveryBackoffCycles: 16,
				WatchdogCycles:        200000,
				InputQueuePackets:     64,
			}
			sim := newAppSim(t, app, cfg)
			gen := pktgen.NewGenerator(app.Traffic)

			// Open the burst and let the first packets enter the pipeline
			// (the first Step also takes the initial checkpoint).
			injected := 0
			for i := 0; i < 8; i++ {
				if sim.InputFree() {
					sim.Inject(gen.Next())
					injected++
				}
				if err := sim.Step(); err != nil {
					t.Fatal(err)
				}
			}
			if sim.Checkpoint() == nil {
				t.Fatal("no initial checkpoint after the first cycle")
			}
			if !corruptDoubleBit(sim.Maps()) {
				t.Skipf("%s populates no map entry to corrupt", app.Name)
			}

			// Keep offering load until the upset is detected (scrub cursor
			// or access path) and the pipeline recovers.
			deadline := sim.Cycle() + 100000
			for sim.Stats().Recoveries == 0 {
				if sim.Cycle() > deadline {
					t.Fatal("uncorrectable upset never detected")
				}
				if sim.InputFree() && injected < 2000 {
					sim.Inject(gen.Next())
					injected++
				}
				if err := sim.Step(); err != nil {
					t.Fatal(err)
				}
			}

			// Checkpoint-restore equivalence: at the end of the recovery
			// cycle the map state is exactly the known-good snapshot.
			if !sim.Maps().Snapshot().Equal(sim.Checkpoint()) {
				t.Error("map state after recovery differs from the checkpoint")
			}
			st := sim.Stats()
			if st.UncorrectableWords == 0 {
				t.Error("recovery fired without an uncorrectable word")
			}

			// Drain accounting at the recovery instant: nothing remains in
			// the stages or the reload queue, and every drained frame
			// retired as XDP_ABORTED.
			for i, j := range sim.stages {
				if j != nil {
					t.Errorf("stage %d still occupied right after recovery", i)
				}
			}
			if len(sim.reload) != 0 {
				t.Errorf("%d flush victims survived the drain", len(sim.reload))
			}
			if st.RecoveryAborted == 0 {
				t.Error("recovery drained no in-flight frames (burst was in flight)")
			}
			if got := st.Actions[ebpf.XDPAborted]; got < st.RecoveryAborted {
				t.Errorf("Actions[XDP_ABORTED] = %d < RecoveryAborted = %d", got, st.RecoveryAborted)
			}
			if st.RecoveryBackoffCycles == 0 {
				t.Error("no backoff charged")
			}

			// The run then completes: ingress-queued packets survived the
			// reset, and injected == retired exactly.
			if err := sim.RunToCompletion(1 << 22); err != nil {
				t.Fatal(err)
			}
			end := sim.Stats()
			if end.Injected != end.Completed {
				t.Errorf("injected %d != completed %d (drain accounting broken)",
					end.Injected, end.Completed)
			}
			if end.Injected != uint64(injected)-(end.QueueDrops) {
				t.Errorf("injected %d, offered %d, queue-dropped %d", end.Injected, injected, end.QueueDrops)
			}
		})
	}
}

// TestRecoveryExhaustionIsTyped proves the bounded-retry contract: with
// MaxRecoveries=1 a second uncorrectable upset before any clean scrub
// pass ends the run with a RecoveryError wrapping ErrRecoveryExhausted.
func TestRecoveryExhaustionIsTyped(t *testing.T) {
	pl := compile(t, "toy", toySource, core.Options{})
	sim, err := New(pl, Config{
		Protection:            protect.LevelECC,
		ScrubCyclesPerWord:    1 << 20, // scrubber effectively off: no clean pass resets the budget
		MaxRecoveries:         1,
		RecoveryBackoffCycles: 8,
	})
	if err != nil {
		t.Fatal(err)
	}

	step := func() error {
		if sim.InputFree() {
			sim.Inject(ethPacket(ebpf.EthPIP, 64))
		}
		return sim.Step()
	}
	// The scrubber is parked, so detection must come from the access
	// path: damage the stats slot the IPv4 traffic actually increments
	// (key 1), with both flips inside one word.
	corruptHot := func() {
		m, _ := sim.Maps().ByID(0)
		i := 0
		m.Iterate(func(_, v []byte) bool {
			if i == 1 {
				v[0] ^= 0x05
				return false
			}
			i++
			return true
		})
	}
	// First cycle takes the checkpoint; then plant the first double flip.
	if err := step(); err != nil {
		t.Fatal(err)
	}
	corruptHot()
	for sim.Stats().Recoveries == 0 {
		if err := step(); err != nil {
			t.Fatalf("first recovery must succeed: %v", err)
		}
		if sim.Cycle() > 100000 {
			t.Fatal("first upset never detected")
		}
	}

	// Second upset: the budget (1) is spent, so the next trigger fails.
	corruptHot()
	var final error
	for final == nil {
		final = step()
		if sim.Cycle() > 200000 {
			t.Fatal("second upset never detected")
		}
	}
	if !errors.Is(final, ErrRecoveryExhausted) {
		t.Fatalf("error %v, want ErrRecoveryExhausted", final)
	}
	var re *RecoveryError
	if !errors.As(final, &re) {
		t.Fatalf("error %T does not unwrap to *RecoveryError", final)
	}
	if re.Attempts != 1 {
		t.Errorf("RecoveryError.Attempts = %d, want 1", re.Attempts)
	}
}

// TestRecoveryFromLivelock wedges the same never-draining stall window
// as the watchdog test; with protection enabled the trip must feed the
// drain-and-restart sequence instead of ending the simulation.
func TestRecoveryFromLivelock(t *testing.T) {
	pl := compile(t, "flow", flowSource, core.Options{})
	sim, err := New(pl, Config{
		Policy:                PolicyStall,
		WatchdogCycles:        500,
		Protection:            protect.LevelECC,
		RecoveryBackoffCycles: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sim.Inject(ipv4Packet(1, 64)) {
		t.Fatal("inject failed")
	}
	if err := sim.Step(); err != nil {
		t.Fatal(err)
	}
	sim.wedgeStall(1, pl.NumStages()-1, 1<<40)

	if err := sim.RunToCompletion(100000); err != nil {
		t.Fatalf("livelock with recovery enabled must heal, got %v", err)
	}
	st := sim.Stats()
	if st.WatchdogTrips != 1 {
		t.Errorf("WatchdogTrips = %d, want 1", st.WatchdogTrips)
	}
	if st.Recoveries != 1 {
		t.Errorf("Recoveries = %d, want 1", st.Recoveries)
	}
	if st.RecoveryAborted != 1 {
		t.Errorf("RecoveryAborted = %d, want 1 (the wedged packet)", st.RecoveryAborted)
	}
	if st.Injected != st.Completed {
		t.Errorf("injected %d != completed %d", st.Injected, st.Completed)
	}
	if st.Actions[ebpf.XDPAborted] != 1 {
		t.Errorf("Actions[XDP_ABORTED] = %d, want 1", st.Actions[ebpf.XDPAborted])
	}
}

// TestRecoveryBackoffSchedule pins the exponential hold schedule.
func TestRecoveryBackoffSchedule(t *testing.T) {
	want := []uint64{256, 512, 1024, 2048, 4096}
	for i, w := range want {
		if got := RecoveryBackoff(i+1, 0); got != w {
			t.Errorf("RecoveryBackoff(%d, default) = %d, want %d", i+1, got, w)
		}
	}
	if got := RecoveryBackoff(3, 16); got != 64 {
		t.Errorf("RecoveryBackoff(3, 16) = %d, want 64", got)
	}
	// The schedule saturates instead of overflowing.
	if got := RecoveryBackoff(60, 256); got != 1<<20 {
		t.Errorf("RecoveryBackoff(60, 256) = %d, want the %d cap", got, 1<<20)
	}
	if got := RecoveryBackoff(0, 100); got != 100 {
		t.Errorf("RecoveryBackoff(0, 100) = %d, want 100 (clamped to attempt 1)", got)
	}
}

// TestProtectionCorrectsSingleBitTransparently checks the happy path:
// one single-bit upset in a looked-up entry is corrected in place, no
// recovery fires, and the corrected value flows to the program.
func TestProtectionCorrectsSingleBitTransparently(t *testing.T) {
	pl := compile(t, "toy", toySource, core.Options{})
	sim, err := New(pl, Config{Protection: protect.LevelECC, ScrubCyclesPerWord: 1})
	if err != nil {
		t.Fatal(err)
	}
	sim.Inject(ethPacket(ebpf.EthPIP, 64))
	if err := sim.Step(); err != nil {
		t.Fatal(err)
	}
	// Single-bit flip in entry 0 of the stats array.
	m, _ := sim.Maps().ByID(0)
	m.Iterate(func(_, v []byte) bool {
		v[3] ^= 0x40
		return false
	})
	if err := sim.RunToCompletion(1 << 20); err != nil {
		t.Fatal(err)
	}
	st := sim.Stats()
	if st.CorrectedWords == 0 {
		t.Error("single-bit upset never corrected")
	}
	if st.UncorrectableWords != 0 || st.Recoveries != 0 {
		t.Errorf("single-bit upset escalated: %d uncorrectable, %d recoveries",
			st.UncorrectableWords, st.Recoveries)
	}
	if st.ScrubPasses == 0 {
		t.Error("scrubber never completed a pass")
	}
	if st.CheckpointsTaken < 2 {
		t.Errorf("CheckpointsTaken = %d, want initial + post-clean-pass", st.CheckpointsTaken)
	}
	if st.Completed != st.Injected {
		t.Errorf("completed %d of %d", st.Completed, st.Injected)
	}
}
