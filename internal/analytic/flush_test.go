package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFlushProbUniformBirthday(t *testing.T) {
	// L=2, N=2: 1 - exp(-1) ~ 0.63.
	got := FlushProbUniform(2, 2)
	if math.Abs(got-(1-math.Exp(-1))) > 1e-9 {
		t.Errorf("P_f^u(2,2) = %f", got)
	}
	if FlushProbUniform(1, 100) != 0 {
		t.Error("a single-stage window cannot collide")
	}
	if FlushProbUniform(10, 0) != 0 {
		t.Error("zero flows must yield zero probability")
	}
}

func TestFlushProbMonotonicity(t *testing.T) {
	// More flows -> lower probability; wider windows -> higher.
	f := func(l8, n16 uint8) bool {
		L := 2 + int(l8)%30
		N := 10 + int(n16)*100
		if FlushProbUniform(L, N) < FlushProbUniform(L, N*10) {
			return false
		}
		if FlushProbUniform(L+1, N) < FlushProbUniform(L, N) {
			return false
		}
		if FlushProbZipf(L, N) < FlushProbZipf(L, N*10)-1e-12 {
			return false
		}
		if FlushProbZipf(L+1, N) < FlushProbZipf(L, N) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestZipfProbabilitiesNormalise(t *testing.T) {
	N := 50000
	var sum float64
	for i := 1; i <= N; i++ {
		sum += ZipfFlowProb(i, N)
	}
	// The ln(N) normalisation makes the sum approach 1 (harmonic ~ ln N + gamma).
	if sum < 0.95 || sum > 1.1 {
		t.Errorf("Zipf frequencies sum to %f", sum)
	}
}

func TestThroughputEquation(t *testing.T) {
	// No flushes: full rate.
	if Throughput(250, 100, 0) != 250 {
		t.Error("zero-P_f throughput must be the peak")
	}
	// Pf=1: every packet costs K cycles.
	if got := Throughput(250, 10, 1); math.Abs(got-25) > 1e-9 {
		t.Errorf("T_p(Pf=1,K=10) = %f, want 25", got)
	}
	// Equation self-consistency with KMax.
	pf := 0.03
	kmax := KMax(250, 148, pf)
	if got := Throughput(250, int(kmax), pf); got < 146 || got > 154 {
		t.Errorf("Throughput at KMax = %f, want ~148 (integer-K rounding allowed)", got)
	}
}

func TestTable4MatchesPaperShape(t *testing.T) {
	rows := Table4()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Paper's Table 4: L=2 -> ~1%, 61; L=3 -> ~3%, 21; L=4 -> ~6%, 11;
	// L=5 -> ~10%, 7. The shape must hold: Pf grows, KMax shrinks, and
	// the magnitudes stay in the same decade.
	wantPf := []float64{0.01, 0.03, 0.06, 0.10}
	wantK := []float64{61, 21, 11, 7}
	for i, row := range rows {
		if row.L != i+2 {
			t.Errorf("row %d: L = %d", i, row.L)
		}
		if row.PfZ < wantPf[i]/3 || row.PfZ > wantPf[i]*3 {
			t.Errorf("L=%d: Pf = %.4f, paper ~%.2f", row.L, row.PfZ, wantPf[i])
		}
		if row.KMax < wantK[i]/3 || row.KMax > wantK[i]*3 {
			t.Errorf("L=%d: KMax = %.1f, paper ~%.0f", row.L, row.KMax, wantK[i])
		}
		if i > 0 {
			if rows[i].PfZ <= rows[i-1].PfZ {
				t.Error("Pf must grow with L")
			}
			if rows[i].KMax >= rows[i-1].KMax {
				t.Error("KMax must shrink with L")
			}
		}
	}
}

func TestTable3NAForAtomicOnlyPrograms(t *testing.T) {
	rows := Table3([]struct {
		Name       string
		K, L       int
		NeedsFlush bool
	}{
		{"firewall", 0, 0, false},
		{"leaky", 39, 5, true},
	})
	if rows[0].TpMpps != 0 {
		t.Error("non-flushing program should report N/A (0)")
	}
	if rows[1].TpMpps <= 0 || rows[1].TpMpps > 250 {
		t.Errorf("leaky Tp = %f", rows[1].TpMpps)
	}
}
