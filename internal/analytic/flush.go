// Package analytic implements the throughput-degradation model of
// Appendix A.1: the probability that a pipeline flush occurs as a
// function of the hazard window L and the flow population, and the
// resulting sustained throughput.
package analytic

import "math"

// FlushProbUniform is equation (1): with N uniformly distributed flows
// and a window of L stages between read and write, the probability that
// two packets of one flow share the window is the birthday bound
//
//	P_f = 1 - exp(-L^2 / 2N).
func FlushProbUniform(L int, N int) float64 {
	if N <= 0 || L <= 1 {
		return 0
	}
	return 1 - math.Exp(-float64(L*L)/(2*float64(N)))
}

// ZipfFlowProb is the per-flow probability under the paper's Zipfian
// model: flow i has frequency proportional to 1/i, normalised by ln(N).
func ZipfFlowProb(i, N int) float64 {
	return 1 / (float64(i) * math.Log(float64(N)))
}

// FlushProbZipf computes P_f^Z: the probability of at least two
// occurrences of some flow within L trials, summing the per-flow
// binomial approximation of Appendix A.1:
//
//	P_f(i) = C(L,2) * P_i^2 * (1-P_i)^(L-2).
func FlushProbZipf(L int, N int) float64 {
	if N <= 1 || L <= 1 {
		return 0
	}
	pairs := float64(L*(L-1)) / 2
	var sum float64
	for i := 1; i <= N; i++ {
		pi := ZipfFlowProb(i, N)
		sum += pairs * pi * pi * math.Pow(1-pi, float64(L-2))
		// The tail contributes negligibly: P_i^2 falls as 1/i^2.
		if i > 10000 && pi*pi*pairs < 1e-12 {
			break
		}
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// Throughput is equation (2): the sustained packet rate of a pipeline
// with peak rate T (one packet per clock) when a flush costs K cycles
// and occurs with probability Pf per packet:
//
//	T_p = T / ((1-P_f) + K*P_f).
func Throughput(T float64, K int, Pf float64) float64 {
	if Pf <= 0 {
		return T
	}
	return T / ((1 - Pf) + float64(K)*Pf)
}

// KMax is equation (3): the largest number of flushable stages that
// still sustains a target throughput Tp:
//
//	K_max = (T/T_p - (1-P_f)) / P_f.
func KMax(T, Tp, Pf float64) float64 {
	if Pf <= 0 {
		return math.Inf(1)
	}
	return (T/Tp - (1 - Pf)) / Pf
}

// Table3Row is one use case of Table 3: the pipeline's hazard geometry
// and the analytic throughput at 50k Zipfian flows.
type Table3Row struct {
	Program string
	K       int
	L       int
	// TpMpps is 0 when the program has no flush hazard (N/A rows).
	TpMpps float64
}

// Table3 evaluates the model for a set of compiled geometries, with the
// paper's parameters: T = 250 Mpps (one packet per 250 MHz clock) and
// N = 50000 Zipfian flows. A flush additionally costs the 4-cycle
// pipeline reload of Appendix A.1.
func Table3(programs []struct {
	Name       string
	K, L       int
	NeedsFlush bool
}) []Table3Row {
	const (
		T       = 250.0
		N       = 50000
		reload  = 4
		MppsCap = 250.0
	)
	rows := make([]Table3Row, 0, len(programs))
	for _, p := range programs {
		row := Table3Row{Program: p.Name, K: p.K, L: p.L}
		if p.NeedsFlush && p.L > 0 {
			pf := FlushProbZipf(p.L, N)
			row.TpMpps = Throughput(T, p.K+reload, pf)
			if row.TpMpps > MppsCap {
				row.TpMpps = MppsCap
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// Table4Row is one row of Table 4: the Zipfian flush probability and
// the maximum flushable stages that still sustain 148 Mpps.
type Table4Row struct {
	L    int
	PfZ  float64
	KMax float64
}

// Table4 evaluates the model for L = 2..5 with the paper's parameters
// (50k Zipfian flows, 250 Mpps peak, 148 Mpps line-rate target).
func Table4() []Table4Row {
	const (
		T  = 250.0
		Tp = 148.0
		N  = 50000
	)
	rows := make([]Table4Row, 0, 4)
	for L := 2; L <= 5; L++ {
		pf := FlushProbZipf(L, N)
		rows = append(rows, Table4Row{L: L, PfZ: pf, KMax: KMax(T, Tp, pf)})
	}
	return rows
}
