package pktgen

import (
	"math/rand"

	"ehdl/internal/ebpf"
)

// TraceProfile captures the published statistics of a real packet trace;
// SyntheticTrace generates traffic matching them. The two profiles below
// stand in for the CAIDA and MAWI captures of Table 2 (the originals are
// gated datasets): what the leaky-bucket experiment depends on is the
// flow count, the mean packet size and the heavy-tailed flow-size
// distribution, all of which the paper reports.
type TraceProfile struct {
	Name string
	// Flows is the number of distinct 5-tuple flows in the trace.
	Flows int
	// MeanPacketLen is the average frame size in bytes.
	MeanPacketLen int
	// MinLen/MaxLen bound the size distribution.
	MinLen, MaxLen int
	// ZipfS shapes the flow-size distribution (heavier tail for values
	// closer to 1).
	ZipfS float64
	// TCPFraction of packets use TCP, the rest UDP.
	TCPFraction float64
	Seed        int64
}

// CAIDAProfile mirrors caida_20190117-134900 as described in Section
// 5.3: 184305 five-tuple flows, 411-byte average packets.
func CAIDAProfile() TraceProfile {
	return TraceProfile{
		Name:          "caida_20190117-134900 (synthetic)",
		Flows:         184305,
		MeanPacketLen: 411,
		MinLen:        60,
		MaxLen:        1514,
		ZipfS:         1.02,
		TCPFraction:   0.85,
		Seed:          190117,
	}
}

// MAWIProfile mirrors mawi_202103221400: 163697 flows, 573-byte average
// packets.
func MAWIProfile() TraceProfile {
	return TraceProfile{
		Name:          "mawi_202103221400 (synthetic)",
		Flows:         163697,
		MeanPacketLen: 573,
		MinLen:        60,
		MaxLen:        1514,
		ZipfS:         1.05,
		TCPFraction:   0.80,
		Seed:          20210322,
	}
}

// Trace is a replayable synthetic capture.
type Trace struct {
	profile TraceProfile
	rng     *rand.Rand
	zipf    *rand.Zipf
	gen     *Generator

	// size distribution: a bimodal mix of small (ACK-sized) and large
	// (MTU-sized) packets tuned to hit the profile's mean.
	pSmall            float64
	smallLen, bigLen  int
	generatedBytes    int64
	generatedPackets  int64
	distinctFlowsSeen map[uint32]struct{}
}

// NewTrace builds a trace replayer for a profile.
func NewTrace(p TraceProfile) *Trace {
	rng := rand.New(rand.NewSource(p.Seed))
	t := &Trace{
		profile:           p,
		rng:               rng,
		zipf:              rand.NewZipf(rng, p.ZipfS, 1, uint64(p.Flows-1)),
		distinctFlowsSeen: map[uint32]struct{}{},
	}
	// Solve the bimodal mix: pSmall*small + (1-pSmall)*big = mean.
	t.smallLen, t.bigLen = p.MinLen, p.MaxLen
	t.pSmall = float64(t.bigLen-p.MeanPacketLen) / float64(t.bigLen-t.smallLen)
	return t
}

// Profile returns the trace's statistics.
func (t *Trace) Profile() TraceProfile { return t.profile }

// Next produces the next packet of the replay.
func (t *Trace) Next() []byte {
	flowIdx := uint32(t.zipf.Uint64())
	proto := uint8(ebpf.IPProtoUDP)
	if t.rng.Float64() < t.profile.TCPFraction {
		proto = ebpf.IPProtoTCP
	}
	size := t.bigLen
	if t.rng.Float64() < t.pSmall {
		size = t.smallLen
	}
	flow := Flow{
		SrcIP:   0x0a_00_00_00 + flowIdx,
		DstIP:   0xc0_a8_00_01,
		SrcPort: uint16(1024 + flowIdx%60000),
		DstPort: 443,
		Proto:   proto,
	}
	t.distinctFlowsSeen[flowIdx] = struct{}{}
	t.generatedPackets++
	t.generatedBytes += int64(size)
	return Build(PacketSpec{Flow: flow, TotalLen: size})
}

// Batch produces n packets.
func (t *Trace) Batch(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = t.Next()
	}
	return out
}

// MeanLen reports the observed mean packet length so far.
func (t *Trace) MeanLen() float64 {
	if t.generatedPackets == 0 {
		return 0
	}
	return float64(t.generatedBytes) / float64(t.generatedPackets)
}

// DistinctFlows reports how many flows have appeared so far.
func (t *Trace) DistinctFlows() int { return len(t.distinctFlowsSeen) }
