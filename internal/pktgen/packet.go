// Package pktgen is the traffic-generation substrate: packet crafting
// for the protocols the evaluation programs parse, flow-set generation
// under uniform and Zipfian distributions, and synthetic replacements
// for the CAIDA and MAWI traces used in Section 5.3 of the paper.
package pktgen

import (
	"encoding/binary"
	"fmt"

	"ehdl/internal/ebpf"
)

// Header sizes.
const (
	EthHeaderLen  = 14
	IPv4HeaderLen = 20
	UDPHeaderLen  = 8
	TCPHeaderLen  = 20
	MinFrameLen   = 60 // minimum Ethernet payload-padded frame (without FCS)
)

// MAC is an Ethernet address.
type MAC [6]byte

// Flow identifies a bidirectional 5-tuple.
type Flow struct {
	SrcIP   uint32
	DstIP   uint32
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

// Reverse returns the flow in the opposite direction.
func (f Flow) Reverse() Flow {
	return Flow{SrcIP: f.DstIP, DstIP: f.SrcIP, SrcPort: f.DstPort, DstPort: f.SrcPort, Proto: f.Proto}
}

// PacketSpec describes one packet to build.
type PacketSpec struct {
	SrcMAC, DstMAC MAC
	EtherType      uint16
	// VLAN inserts an 802.1Q tag with this VID when non-zero.
	VLAN uint16
	Flow Flow
	// TotalLen is the frame length including all headers; the payload is
	// zero-filled. Values below the protocol minimum are raised to it.
	TotalLen int
	// TCPFlags applies to TCP packets (e.g. 0x02 for SYN).
	TCPFlags uint8
	TTL      uint8
}

// Build constructs the packet bytes.
func Build(spec PacketSpec) []byte {
	ttl := spec.TTL
	if ttl == 0 {
		ttl = 64
	}
	etherType := spec.EtherType
	if etherType == 0 {
		etherType = ebpf.EthPIP
	}

	tagLen := 0
	if spec.VLAN != 0 {
		tagLen = 4
	}
	minLen := EthHeaderLen + tagLen
	if etherType == ebpf.EthPIP {
		minLen += IPv4HeaderLen
		switch spec.Flow.Proto {
		case ebpf.IPProtoUDP:
			minLen += UDPHeaderLen
		case ebpf.IPProtoTCP:
			minLen += TCPHeaderLen
		}
	}
	total := spec.TotalLen
	if total < minLen {
		total = minLen
	}

	pkt := make([]byte, total)
	copy(pkt[0:6], spec.DstMAC[:])
	copy(pkt[6:12], spec.SrcMAC[:])
	ethTypeOff := 12
	if spec.VLAN != 0 {
		binary.BigEndian.PutUint16(pkt[12:14], ebpf.EthPVLAN)
		binary.BigEndian.PutUint16(pkt[14:16], spec.VLAN&0x0fff)
		ethTypeOff = 16
	}
	binary.BigEndian.PutUint16(pkt[ethTypeOff:ethTypeOff+2], etherType)
	if etherType != ebpf.EthPIP {
		return pkt
	}

	ip := pkt[EthHeaderLen+tagLen:]
	ip[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(ip[2:4], uint16(total-EthHeaderLen-tagLen))
	ip[8] = ttl
	ip[9] = spec.Flow.Proto
	binary.BigEndian.PutUint32(ip[12:16], spec.Flow.SrcIP)
	binary.BigEndian.PutUint32(ip[16:20], spec.Flow.DstIP)
	binary.BigEndian.PutUint16(ip[10:12], ipChecksum(ip[:IPv4HeaderLen]))

	l4 := ip[IPv4HeaderLen:]
	switch spec.Flow.Proto {
	case ebpf.IPProtoUDP:
		binary.BigEndian.PutUint16(l4[0:2], spec.Flow.SrcPort)
		binary.BigEndian.PutUint16(l4[2:4], spec.Flow.DstPort)
		binary.BigEndian.PutUint16(l4[4:6], uint16(len(l4)))
	case ebpf.IPProtoTCP:
		binary.BigEndian.PutUint16(l4[0:2], spec.Flow.SrcPort)
		binary.BigEndian.PutUint16(l4[2:4], spec.Flow.DstPort)
		l4[12] = 5 << 4 // data offset
		l4[13] = spec.TCPFlags
	}
	return pkt
}

// ipChecksum computes the IPv4 header checksum with the checksum field
// treated as zero.
func ipChecksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		if i == 10 {
			continue // checksum field
		}
		sum += uint32(binary.BigEndian.Uint16(hdr[i : i+2]))
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// VerifyIPChecksum reports whether the packet's IPv4 header checksum is
// valid.
func VerifyIPChecksum(pkt []byte) bool {
	if len(pkt) < EthHeaderLen+IPv4HeaderLen {
		return false
	}
	hdr := pkt[EthHeaderLen : EthHeaderLen+IPv4HeaderLen]
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(hdr[i : i+2]))
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return uint16(sum) == 0xffff
}

// ParseFlow extracts the 5-tuple of an IPv4 packet, skipping one
// optional 802.1Q tag.
func ParseFlow(pkt []byte) (Flow, error) {
	if len(pkt) < EthHeaderLen+IPv4HeaderLen {
		return Flow{}, fmt.Errorf("pktgen: packet too short (%d bytes)", len(pkt))
	}
	l3 := EthHeaderLen
	etherType := binary.BigEndian.Uint16(pkt[12:14])
	if etherType == ebpf.EthPVLAN {
		if len(pkt) < EthHeaderLen+4+IPv4HeaderLen {
			return Flow{}, fmt.Errorf("pktgen: tagged packet too short")
		}
		etherType = binary.BigEndian.Uint16(pkt[16:18])
		l3 += 4
	}
	if etherType != ebpf.EthPIP {
		return Flow{}, fmt.Errorf("pktgen: not an IPv4 packet")
	}
	ip := pkt[l3:]
	f := Flow{
		Proto: ip[9],
		SrcIP: binary.BigEndian.Uint32(ip[12:16]),
		DstIP: binary.BigEndian.Uint32(ip[16:20]),
	}
	ihl := int(ip[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || ihl > len(ip) {
		// A malformed IHL nibble can point past the frame; the flow is
		// still identified by its addresses, ports stay zero.
		return f, nil
	}
	l4 := ip[ihl:]
	if (f.Proto == ebpf.IPProtoUDP || f.Proto == ebpf.IPProtoTCP) && len(l4) >= 4 {
		f.SrcPort = binary.BigEndian.Uint16(l4[0:2])
		f.DstPort = binary.BigEndian.Uint16(l4[2:4])
	}
	return f, nil
}
