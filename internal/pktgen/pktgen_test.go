package pktgen

import (
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"

	"ehdl/internal/ebpf"
)

func TestBuildUDPPacket(t *testing.T) {
	flow := Flow{SrcIP: 0x0a000001, DstIP: 0xc0a80001, SrcPort: 1234, DstPort: 80, Proto: ebpf.IPProtoUDP}
	pkt := Build(PacketSpec{Flow: flow, TotalLen: 64})
	if len(pkt) != 64 {
		t.Fatalf("len = %d", len(pkt))
	}
	if et := binary.BigEndian.Uint16(pkt[12:14]); et != ebpf.EthPIP {
		t.Errorf("ethertype = %#x", et)
	}
	if !VerifyIPChecksum(pkt) {
		t.Error("IP checksum invalid")
	}
	got, err := ParseFlow(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got != flow {
		t.Errorf("ParseFlow = %+v, want %+v", got, flow)
	}
}

func TestBuildTCPFlags(t *testing.T) {
	flow := Flow{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: ebpf.IPProtoTCP}
	pkt := Build(PacketSpec{Flow: flow, TCPFlags: 0x02})
	if pkt[EthHeaderLen+IPv4HeaderLen+13] != 0x02 {
		t.Error("SYN flag not set")
	}
	if len(pkt) != EthHeaderLen+IPv4HeaderLen+TCPHeaderLen {
		t.Errorf("default TCP length = %d", len(pkt))
	}
}

func TestBuildRaisesShortLengths(t *testing.T) {
	pkt := Build(PacketSpec{Flow: Flow{Proto: ebpf.IPProtoUDP}, TotalLen: 10})
	if len(pkt) < EthHeaderLen+IPv4HeaderLen+UDPHeaderLen {
		t.Errorf("short spec produced %d bytes", len(pkt))
	}
}

func TestFlowReverse(t *testing.T) {
	f := Flow{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 17}
	r := f.Reverse()
	if r.SrcIP != 2 || r.DstIP != 1 || r.SrcPort != 4 || r.DstPort != 3 {
		t.Errorf("Reverse = %+v", r)
	}
	if r.Reverse() != f {
		t.Error("double reverse is not identity")
	}
}

func TestPropertyParseBuildRoundTrip(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, udp bool, extra uint8) bool {
		proto := uint8(ebpf.IPProtoTCP)
		if udp {
			proto = ebpf.IPProtoUDP
		}
		flow := Flow{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp, Proto: proto}
		pkt := Build(PacketSpec{Flow: flow, TotalLen: 64 + int(extra)})
		got, err := ParseFlow(pkt)
		return err == nil && got == flow && VerifyIPChecksum(pkt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(GeneratorConfig{Flows: 100, Seed: 5}).Batch(50)
	b := NewGenerator(GeneratorConfig{Flows: 100, Seed: 5}).Batch(50)
	for i := range a {
		if string(a[i]) != string(b[i]) {
			t.Fatal("same-seed generators diverged")
		}
	}
}

func TestGeneratorCoversFlows(t *testing.T) {
	g := NewGenerator(GeneratorConfig{Flows: 16, Seed: 1})
	seen := map[Flow]bool{}
	for i := 0; i < 1000; i++ {
		f, err := ParseFlow(g.Next())
		if err != nil {
			t.Fatal(err)
		}
		seen[f] = true
	}
	if len(seen) != 16 {
		t.Errorf("uniform generator hit %d of 16 flows", len(seen))
	}
}

func TestZipfSkew(t *testing.T) {
	g := NewGenerator(GeneratorConfig{Flows: 1000, Distribution: Zipf, Seed: 2})
	counts := map[uint32]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		f, _ := ParseFlow(g.Next())
		counts[f.SrcIP]++
	}
	top := 0
	for _, c := range counts {
		if c > top {
			top = c
		}
	}
	// Under 1/i the top flow takes ~1/ln(N) of traffic: far above 1/N.
	if float64(top)/n < 0.05 {
		t.Errorf("top flow share = %.3f; Zipf skew missing", float64(top)/n)
	}
	if len(counts) < 100 {
		t.Errorf("only %d distinct flows generated", len(counts))
	}
}

func TestLineRatePPS(t *testing.T) {
	pps := LineRatePPS(100e9, 64)
	if math.Abs(pps-148.8e6) > 0.2e6 {
		t.Errorf("line rate for 64B at 100G = %.2f Mpps, want ~148.8", pps/1e6)
	}
}

func TestTraceProfiles(t *testing.T) {
	for _, p := range []TraceProfile{CAIDAProfile(), MAWIProfile()} {
		tr := NewTrace(p)
		for i := 0; i < 20000; i++ {
			pkt := tr.Next()
			if len(pkt) < p.MinLen || len(pkt) > p.MaxLen {
				t.Fatalf("%s: packet of %d bytes outside [%d,%d]", p.Name, len(pkt), p.MinLen, p.MaxLen)
			}
		}
		mean := tr.MeanLen()
		if math.Abs(mean-float64(p.MeanPacketLen)) > 25 {
			t.Errorf("%s: mean packet %.1fB, want ~%dB", p.Name, mean, p.MeanPacketLen)
		}
		if tr.DistinctFlows() < 1000 {
			t.Errorf("%s: only %d distinct flows in 20k packets", p.Name, tr.DistinctFlows())
		}
	}
}

func TestTraceFlowCountsMatchPaper(t *testing.T) {
	if CAIDAProfile().Flows != 184305 {
		t.Error("CAIDA flow count drifted from the paper's 184305")
	}
	if MAWIProfile().Flows != 163697 {
		t.Error("MAWI flow count drifted from the paper's 163697")
	}
}

func TestVLANTaggedPacket(t *testing.T) {
	flow := Flow{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: ebpf.IPProtoTCP}
	pkt := Build(PacketSpec{Flow: flow, VLAN: 100, TotalLen: 80})
	if et := binary.BigEndian.Uint16(pkt[12:14]); et != ebpf.EthPVLAN {
		t.Fatalf("outer ethertype = %#x", et)
	}
	if vid := binary.BigEndian.Uint16(pkt[14:16]) & 0x0fff; vid != 100 {
		t.Errorf("VID = %d", vid)
	}
	if et := binary.BigEndian.Uint16(pkt[16:18]); et != ebpf.EthPIP {
		t.Errorf("inner ethertype = %#x", et)
	}
	got, err := ParseFlow(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got != flow {
		t.Errorf("ParseFlow through the tag = %+v", got)
	}
}
