package pktgen

import (
	"math/rand"

	"ehdl/internal/ebpf"
)

// Distribution selects how packets are spread over the flow set.
type Distribution int

// Flow distributions.
const (
	Uniform Distribution = iota
	Zipf                 // frequency of flow i proportional to 1/i (Appendix A.1)
)

// GeneratorConfig parameterises a traffic generator.
type GeneratorConfig struct {
	// Flows is the number of distinct 5-tuples.
	Flows int
	// Distribution spreads packets over flows.
	Distribution Distribution
	// PacketLen is the frame size of generated packets (default 64, the
	// line-rate worst case of the paper's testbed).
	PacketLen int
	// Proto is the transport protocol (default UDP).
	Proto uint8
	// Seed makes runs reproducible.
	Seed int64
	// TCPFlags is applied to TCP packets.
	TCPFlags uint8
}

// Generator produces a reproducible stream of packets over a flow set.
type Generator struct {
	cfg   GeneratorConfig
	rng   *rand.Rand
	zipf  *rand.Zipf
	flows []Flow
}

// NewGenerator builds a generator with a deterministic flow set.
func NewGenerator(cfg GeneratorConfig) *Generator {
	if cfg.Flows <= 0 {
		cfg.Flows = 1
	}
	if cfg.PacketLen == 0 {
		cfg.PacketLen = 64
	}
	if cfg.Proto == 0 {
		cfg.Proto = ebpf.IPProtoUDP
	}
	g := &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed + 1))}
	g.flows = make([]Flow, cfg.Flows)
	for i := range g.flows {
		g.flows[i] = Flow{
			SrcIP:   0x0a_00_00_00 | uint32(i+1),
			DstIP:   0xc0_a8_00_01,
			SrcPort: uint16(1024 + i%60000),
			DstPort: 8080,
			Proto:   cfg.Proto,
		}
	}
	if cfg.Distribution == Zipf {
		// s slightly above 1 approximates the paper's 1/i law, which
		// rand.Zipf requires s > 1.
		g.zipf = rand.NewZipf(g.rng, 1.01, 1, uint64(cfg.Flows-1))
	}
	return g
}

// FlowCount returns the size of the flow set.
func (g *Generator) FlowCount() int { return len(g.flows) }

// FlowAt returns flow i of the set.
func (g *Generator) FlowAt(i int) Flow { return g.flows[i] }

// NextFlow draws the next flow per the configured distribution.
func (g *Generator) NextFlow() Flow {
	switch g.cfg.Distribution {
	case Zipf:
		return g.flows[g.zipf.Uint64()]
	default:
		return g.flows[g.rng.Intn(len(g.flows))]
	}
}

// Next builds the next packet.
func (g *Generator) Next() []byte {
	return Build(PacketSpec{
		Flow:     g.NextFlow(),
		TotalLen: g.cfg.PacketLen,
		TCPFlags: g.cfg.TCPFlags,
	})
}

// Batch builds n packets.
func (g *Generator) Batch(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// LineRatePPS returns the packets-per-second of a fully loaded link for
// a given frame size, accounting for the 20 bytes of per-frame overhead
// (preamble + IFG): 148.8 Mpps for 64-byte frames at 100 Gbps.
func LineRatePPS(linkBitsPerSec float64, frameLen int) float64 {
	wire := float64(frameLen+20) * 8
	return linkBitsPerSec / wire
}
