package pktgen

import (
	"encoding/binary"
	"math/rand"
)

// MalformKind selects one class of wire-level damage applied to an
// otherwise well-formed frame. These model what a NIC actually receives
// under link errors, buggy peers and fuzzing traffic: frames cut
// mid-header, length fields that disagree with the frame, runt and
// jumbo frames. The hardware pipeline must resolve every one of them to
// a verdict (normally the configured OOBAction) without assistance.
type MalformKind int

// Malformation classes.
const (
	// MalformTruncateEth cuts the frame inside the Ethernet header.
	MalformTruncateEth MalformKind = iota
	// MalformTruncateIP cuts the frame inside the IPv4 header.
	MalformTruncateIP
	// MalformTruncateL4 cuts the frame inside the transport header.
	MalformTruncateL4
	// MalformBogusIPLen rewrites the IPv4 total-length field to a value
	// that disagrees with the frame length.
	MalformBogusIPLen
	// MalformZeroLength replaces the frame with a zero-length frame.
	MalformZeroLength
	// MalformOversize pads the frame to jumbo size, beyond the MTU the
	// evaluation programs expect.
	MalformOversize
	// NumMalformKinds is the number of malformation classes.
	NumMalformKinds
)

func (k MalformKind) String() string {
	switch k {
	case MalformTruncateEth:
		return "truncate-eth"
	case MalformTruncateIP:
		return "truncate-ip"
	case MalformTruncateL4:
		return "truncate-l4"
	case MalformBogusIPLen:
		return "bogus-ip-len"
	case MalformZeroLength:
		return "zero-length"
	case MalformOversize:
		return "oversize"
	}
	return "malform-?"
}

// MalformKinds returns every malformation class in a stable order.
func MalformKinds() []MalformKind {
	out := make([]MalformKind, NumMalformKinds)
	for i := range out {
		out[i] = MalformKind(i)
	}
	return out
}

// OversizeFrameLen is the jumbo length MalformOversize pads to.
const OversizeFrameLen = 4096

// Malform applies one class of damage to pkt and returns the damaged
// frame (a fresh slice; pkt is not modified). Cut points inside a
// header are drawn from rng so repeated calls with the same seed walk
// the same mid-field offsets.
func Malform(pkt []byte, kind MalformKind, rng *rand.Rand) []byte {
	cut := func(limit int) []byte {
		if limit > len(pkt) {
			limit = len(pkt)
		}
		if limit <= 0 {
			return []byte{}
		}
		return append([]byte(nil), pkt[:rng.Intn(limit)]...)
	}
	switch kind {
	case MalformTruncateEth:
		return cut(EthHeaderLen)
	case MalformTruncateIP:
		return cut(EthHeaderLen + IPv4HeaderLen)
	case MalformTruncateL4:
		return cut(EthHeaderLen + IPv4HeaderLen + UDPHeaderLen)
	case MalformBogusIPLen:
		out := append([]byte(nil), pkt...)
		if len(out) >= EthHeaderLen+4 {
			// Claim far more payload than the frame carries (or none).
			bogus := uint16(rng.Intn(2) * 0xffff)
			binary.BigEndian.PutUint16(out[EthHeaderLen+2:EthHeaderLen+4], bogus)
		}
		return out
	case MalformZeroLength:
		return []byte{}
	case MalformOversize:
		out := make([]byte, OversizeFrameLen)
		copy(out, pkt)
		return out
	}
	return append([]byte(nil), pkt...)
}
