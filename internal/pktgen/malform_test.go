package pktgen

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func wellFormed() []byte {
	return Build(PacketSpec{
		Flow:     Flow{SrcIP: 0x0a000001, DstIP: 0x0a000002, SrcPort: 1000, DstPort: 53, Proto: 17},
		TotalLen: 64,
	})
}

func TestMalformInvariants(t *testing.T) {
	for _, kind := range MalformKinds() {
		rng := rand.New(rand.NewSource(3))
		for trial := 0; trial < 50; trial++ {
			pkt := wellFormed()
			orig := append([]byte(nil), pkt...)
			out := Malform(pkt, kind, rng)
			if !bytes.Equal(pkt, orig) {
				t.Fatalf("%s: Malform modified its input", kind)
			}
			switch kind {
			case MalformTruncateEth:
				if len(out) >= EthHeaderLen {
					t.Fatalf("%s: %d bytes, want a cut inside the Ethernet header", kind, len(out))
				}
			case MalformTruncateIP:
				if len(out) >= EthHeaderLen+IPv4HeaderLen {
					t.Fatalf("%s: %d bytes, want a cut inside the IPv4 header", kind, len(out))
				}
			case MalformTruncateL4:
				if len(out) >= EthHeaderLen+IPv4HeaderLen+UDPHeaderLen {
					t.Fatalf("%s: %d bytes, want a cut inside the transport header", kind, len(out))
				}
			case MalformBogusIPLen:
				if len(out) != len(orig) {
					t.Fatalf("%s: length changed %d -> %d", kind, len(orig), len(out))
				}
				claimed := int(out[EthHeaderLen+2])<<8 | int(out[EthHeaderLen+3])
				if claimed == len(out)-EthHeaderLen {
					t.Fatalf("%s: total-length field still agrees with the frame", kind)
				}
			case MalformZeroLength:
				if len(out) != 0 {
					t.Fatalf("%s: %d bytes, want zero", kind, len(out))
				}
			case MalformOversize:
				if len(out) != OversizeFrameLen {
					t.Fatalf("%s: %d bytes, want %d", kind, len(out), OversizeFrameLen)
				}
				if !bytes.Equal(out[:len(orig)], orig) {
					t.Fatalf("%s: jumbo frame does not carry the original prefix", kind)
				}
			}
		}
	}
}

func TestMalformDeterministic(t *testing.T) {
	for _, kind := range MalformKinds() {
		a := rand.New(rand.NewSource(11))
		b := rand.New(rand.NewSource(11))
		for trial := 0; trial < 20; trial++ {
			pa := Malform(wellFormed(), kind, a)
			pb := Malform(wellFormed(), kind, b)
			if !bytes.Equal(pa, pb) {
				t.Fatalf("%s: same seed produced different damage on trial %d", kind, trial)
			}
		}
	}
}

func TestMalformTinyInputs(t *testing.T) {
	// Damage applied to already-degenerate frames must stay in bounds.
	rng := rand.New(rand.NewSource(5))
	for _, kind := range MalformKinds() {
		for _, n := range []int{0, 1, 4, EthHeaderLen} {
			out := Malform(make([]byte, n), kind, rng)
			if kind == MalformOversize && len(out) != OversizeFrameLen {
				t.Fatalf("%s on %dB frame: %d bytes", kind, n, len(out))
			}
			if kind != MalformOversize && len(out) > n {
				t.Fatalf("%s on %dB frame grew it to %d bytes", kind, n, len(out))
			}
		}
	}
}

func TestMalformKindNames(t *testing.T) {
	kinds := MalformKinds()
	if len(kinds) != int(NumMalformKinds) {
		t.Fatalf("MalformKinds returned %d of %d", len(kinds), NumMalformKinds)
	}
	seen := map[string]bool{}
	for _, kind := range kinds {
		name := kind.String()
		if name == "" || strings.Contains(name, "?") || seen[name] {
			t.Errorf("kind %d has a bad or duplicate name %q", kind, name)
		}
		seen[name] = true
	}
	if !strings.Contains(MalformKind(99).String(), "?") {
		t.Error("out-of-range kind should stringify as unknown")
	}
}
