package fleet

import (
	"encoding/json"
	"testing"

	"ehdl/internal/apps"
	"ehdl/internal/faults"
	"ehdl/internal/hwsim"
	"ehdl/internal/nic"
	"ehdl/internal/obs"
	"ehdl/internal/protect"
)

func toyUpdate(t *testing.T) *UpdateConfig {
	t.Helper()
	app := apps.Toy()
	prog, err := app.Program()
	if err != nil {
		t.Fatal(err)
	}
	return &UpdateConfig{Prog: prog, Setup: app.SetupHost}
}

// TestRingPartition pins the consistent-hash ring's contract: a
// deterministic, reasonably balanced partition whose flows move only
// off a removed device, never between survivors.
func TestRingPartition(t *testing.T) {
	r := newRing(16)
	for d := 0; d < 8; d++ {
		r.Add(d)
	}
	const probes = 1 << 14
	home := make([]int, probes)
	load := map[int]int{}
	for h := 0; h < probes; h++ {
		d, ok := r.Lookup(uint32(h) * 2654435761)
		if !ok {
			t.Fatal("lookup failed on a populated ring")
		}
		home[h] = d
		load[d]++
	}
	for d := 0; d < 8; d++ {
		if load[d] == 0 {
			t.Errorf("device %d received no flows", d)
		}
	}
	r.Remove(3)
	moved := 0
	for h := 0; h < probes; h++ {
		d, _ := r.Lookup(uint32(h) * 2654435761)
		if d != home[h] {
			if home[h] != 3 {
				t.Fatalf("flow %d moved %d -> %d though device 3 was removed", h, home[h], d)
			}
			moved++
		}
	}
	if moved != load[3] {
		t.Errorf("%d flows moved, want exactly device 3's %d", moved, load[3])
	}
	// Re-adding restores the identical partition: membership alone
	// determines the ring.
	r.Add(3)
	for h := 0; h < probes; h++ {
		if d, _ := r.Lookup(uint32(h) * 2654435761); d != home[h] {
			t.Fatalf("flow %d not restored to device %d after re-admit", h, home[h])
		}
	}
}

// TestFleetCleanRollout: with no chaos, the rolling canary update walks
// every device, each soak clears the throughput floor, and the fleet
// stays divergence-free end to end.
func TestFleetCleanRollout(t *testing.T) {
	c, err := New(Config{
		Devices:      4,
		App:          apps.Toy(),
		Seed:         11,
		EpochPackets: 256,
		Verify:       true,
		Update:       toyUpdate(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(12)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Report(); got.Generated != rep.Generated || got.Rollout != rep.Rollout {
		t.Errorf("Report() disagrees with Run's return: %+v vs %+v", got, rep)
	}
	if rep.Rollout != "done" {
		t.Fatalf("rollout %q (halt %q), want done", rep.Rollout, rep.RolloutHalt)
	}
	for _, d := range rep.PerDevice {
		if !d.Updated || d.State != "healthy" {
			t.Errorf("device %d: updated=%v state=%s", d.ID, d.Updated, d.State)
		}
	}
	if rep.Device.UpdatesCompleted != 4 || rep.Device.UpdatesRolledBack != 0 {
		t.Errorf("updates completed %d rolled back %d, want 4/0",
			rep.Device.UpdatesCompleted, rep.Device.UpdatesRolledBack)
	}
	if rep.Device.CanariedPackets == 0 {
		t.Error("rollout canaried no packets")
	}
	if rep.VerdictDivergences != 0 || rep.VerifiedEpochs == 0 {
		t.Errorf("verification: %d divergences over %d verified epochs",
			rep.VerdictDivergences, rep.VerifiedEpochs)
	}
	if !rep.Accounted() {
		t.Errorf("loss books don't balance: %+v", rep)
	}
	if rep.QueueLost+rep.KilledLoss+rep.MidServeLoss+rep.UnroutableLoss != 0 {
		t.Errorf("clean run lost packets: %+v", rep)
	}
}

// TestFleetChaosGate is the headline gate: 2 of 5 devices (40%) are
// killed or silently corrupted mid-rollout under sustained load.
// Surviving devices must show zero verdict divergence against the
// reference interpreter, all loss must be bounded by the partitions the
// chaos took and exactly accounted, the corruption must be caught and
// quarantined, and the whole run must replay byte-identically from the
// same seed.
func TestFleetChaosGate(t *testing.T) {
	cfg := Config{
		Devices:      5,
		App:          apps.Toy(),
		Seed:         23,
		EpochPackets: 250,
		Verify:       true,
		Update:       toyUpdate(t),
		KillAt:       map[int][]int{5: {1}},
		CorruptAt:    map[int][]int{7: {2}},
	}
	run := func() Report {
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := c.Run(16)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	rep := run()

	if rep.Kills != 1 || rep.CorruptionsInjected != 1 {
		t.Fatalf("chaos did not land: %d kills, %d corruptions", rep.Kills, rep.CorruptionsInjected)
	}
	if rep.Quarantines != 1 {
		t.Errorf("silent corruption not quarantined: %d quarantines", rep.Quarantines)
	}
	if rep.DeadDevices != 2 {
		t.Errorf("dead devices %d, want 2 (1 killed + 1 quarantined)", rep.DeadDevices)
	}
	// Zero verdict divergence on flows served by surviving devices.
	if rep.VerdictDivergences != 0 {
		t.Errorf("%d verdict divergences on surviving devices", rep.VerdictDivergences)
	}
	if rep.VerifiedEpochs == 0 {
		t.Error("verification never ran")
	}
	// Loss is bounded by the partition the kill took, and exactly
	// accounted.
	if rep.KilledLoss == 0 || rep.KilledLoss > uint64(cfg.EpochPackets) {
		t.Errorf("killed loss %d outside (0, %d]", rep.KilledLoss, cfg.EpochPackets)
	}
	if !rep.Accounted() {
		t.Errorf("loss books don't balance: generated %d+%d != %d+%d+%d+%d+%d",
			rep.Generated, rep.ExtraInjected, rep.Delivered, rep.QueueLost,
			rep.KilledLoss, rep.MidServeLoss, rep.UnroutableLoss)
	}
	// The rollout completes on the survivors despite the chaos.
	if rep.Rollout != "done" {
		t.Errorf("rollout %q (halt %q), want done on survivors", rep.Rollout, rep.RolloutHalt)
	}
	for _, d := range rep.PerDevice {
		if d.State == "healthy" && !d.Updated {
			t.Errorf("surviving device %d never updated", d.ID)
		}
	}

	// Deterministic same-seed replay, byte for byte.
	a, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(run())
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("same-seed replay diverged:\n" + string(a) + "\n" + string(b))
	}
}

// TestFleetRolloutHaltsAndRollsBack: a fault campaign injected into one
// device's shadow pipeline makes its canary diverge; the rollout must
// halt there and revert the devices already updated, leaving the whole
// fleet on the old program.
func TestFleetRolloutHaltsAndRollsBack(t *testing.T) {
	u := toyUpdate(t)
	u.ShadowChaos = map[int]faults.Config{
		1: faults.Single(faults.SEUMapEntry, 0.9, 99),
	}
	c, err := New(Config{
		Devices:      4,
		App:          apps.Toy(),
		Seed:         31,
		EpochPackets: 256,
		Update:       u,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(12)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rollout != "rolled-back" {
		t.Fatalf("rollout %q (halt %q), want rolled-back", rep.Rollout, rep.RolloutHalt)
	}
	if rep.RolloutHalt == "" {
		t.Error("halt recorded no cause")
	}
	if rep.Device.UpdatesRolledBack == 0 {
		t.Error("the diverging device's update never rolled back")
	}
	var reverted int
	for _, d := range rep.PerDevice {
		if d.Updated {
			t.Errorf("device %d still on the new program after rollback", d.ID)
		}
		if d.Reverted {
			reverted++
		}
	}
	if reverted == 0 {
		t.Error("no already-updated device was reverted")
	}
	if !rep.Accounted() {
		t.Errorf("loss books don't balance: %+v", rep)
	}
}

// TestFleetDrainReadmit: hair-trigger watchdogs under protection make
// every device recover during its epoch, so the health rule drains them
// from the ring; after the jittered cool-down they re-admit. Flows
// generated while the ring was empty are charged to UnroutableLoss and
// the books still balance exactly.
func TestFleetDrainReadmit(t *testing.T) {
	c, err := New(Config{
		Devices:      2,
		App:          apps.Toy(),
		Seed:         47,
		EpochPackets: 64,
		Shell: nic.ShellConfig{Sim: hwsim.Config{
			Protection:            protect.LevelECC,
			WatchdogCycles:        2,
			MaxRecoveries:         -1,
			RecoveryBackoffCycles: 4,
		}},
		CooldownEpochs: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Drains < 2 {
		t.Errorf("recovering devices drained %d times, want >= 2", rep.Drains)
	}
	if rep.Readmits == 0 {
		t.Error("no drained device was re-admitted after cool-down")
	}
	if rep.UnroutableLoss == 0 {
		t.Error("an empty ring charged no unroutable loss")
	}
	if rep.Device.Recoveries == 0 || rep.Device.WatchdogTrips == 0 {
		t.Errorf("no recoveries surfaced: %d recoveries, %d trips",
			rep.Device.Recoveries, rep.Device.WatchdogTrips)
	}
	if !rep.Accounted() {
		t.Errorf("loss books don't balance: %+v", rep)
	}
	if rep.DeadDevices != 0 {
		t.Errorf("%d devices died; drains must be recoverable", rep.DeadDevices)
	}
}

// TestFleetEventCoverage proves the fleet-owned event classes —
// KindRolloutPhase and KindRebalance, exempted from the simulator-side
// coverage test — are actually emitted, and that the fleet metrics
// accumulate.
func TestFleetEventCoverage(t *testing.T) {
	tr := obs.NewTracer(4096)
	reg := obs.NewRegistry()
	c, err := New(Config{
		Devices:      3,
		App:          apps.Toy(),
		Seed:         53,
		EpochPackets: 128,
		Update:       toyUpdate(t),
		KillAt:       map[int][]int{4: {2}},
		Trace:        tr,
		Metrics:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(8); err != nil {
		t.Fatal(err)
	}
	seen := map[obs.Kind]bool{}
	for _, ev := range tr.Recent() {
		seen[ev.Kind] = true
	}
	for _, k := range []obs.Kind{obs.KindRolloutPhase, obs.KindRebalance} {
		if !seen[k] {
			t.Errorf("fleet never emitted %q", k)
		}
	}
	if v, _ := reg.CounterValue(MetricKills); v != 1 {
		t.Errorf("%s = %d, want 1", MetricKills, v)
	}
	if v, _ := reg.CounterValue(MetricUpdates); v == 0 {
		t.Errorf("%s never counted", MetricUpdates)
	}
	if v, _ := reg.CounterValue(MetricDelivered); v == 0 {
		t.Errorf("%s never counted", MetricDelivered)
	}
}

// TestFleetRolloutRate: RolloutRate=3 stretches each device's soak to
// two epochs, so a 2-device rollout needs 6 update/soak epochs; it still
// completes, and a shorter run at the same rate must end mid-flight.
func TestFleetRolloutRate(t *testing.T) {
	u := toyUpdate(t)
	u.RolloutRate = 3
	mk := func() *Controller {
		c, err := New(Config{
			Devices:      2,
			App:          apps.Toy(),
			Seed:         61,
			EpochPackets: 128,
			Update:       u,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	rep, err := mk().Run(8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rollout != "done" || rep.Device.UpdatesCompleted != 2 {
		t.Errorf("rate-3 rollout over 8 epochs: %q with %d updates, want done with 2",
			rep.Rollout, rep.Device.UpdatesCompleted)
	}
	// 4 epochs cover the first device's update+soak but not the second
	// device's soak window: the run ends rolling.
	short, err := mk().Run(4)
	if err != nil {
		t.Fatal(err)
	}
	if short.Rollout != "rolling" {
		t.Errorf("rate-3 rollout over 4 epochs: %q, want rolling", short.Rollout)
	}
}

// TestRolloutPhaseString pins the phase names riding in trace events.
func TestRolloutPhaseString(t *testing.T) {
	want := map[RolloutPhase]string{
		PhaseStart:        "start",
		PhaseDeviceUpdate: "device-update",
		PhaseDeviceSoaked: "device-soaked",
		PhaseHalt:         "halt",
		PhaseRevert:       "revert",
		PhaseDone:         "done",
		PhaseRolledBack:   "rolled-back",
	}
	for p, name := range want {
		if p.String() != name {
			t.Errorf("phase %d = %q, want %q", uint64(p), p.String(), name)
		}
	}
	if got := RolloutPhase(99).String(); got != "phase(99)" {
		t.Errorf("out-of-range phase = %q", got)
	}
}

// TestRingMembership pins Has/Len and idempotent add/remove.
func TestRingMembership(t *testing.T) {
	r := newRing(0) // 0 defaults to 16 vnodes per device
	if r.Len() != 0 {
		t.Errorf("empty ring Len = %d", r.Len())
	}
	if _, ok := r.Lookup(42); ok {
		t.Error("empty ring resolved a lookup")
	}
	r.Add(1)
	r.Add(1) // idempotent
	if !r.Has(1) || r.Has(2) || r.Len() != 1 {
		t.Errorf("membership after add: has(1)=%v has(2)=%v len=%d", r.Has(1), r.Has(2), r.Len())
	}
	r.Remove(2) // not a member: no-op
	r.Remove(1)
	r.Remove(1) // idempotent
	if r.Has(1) || r.Len() != 0 {
		t.Errorf("membership after remove: has(1)=%v len=%d", r.Has(1), r.Len())
	}
}

// TestConfigDefaults pins every zero-value fallback and its override.
func TestConfigDefaults(t *testing.T) {
	var c Config
	if c.devices() != 4 || c.seed() != 1 || c.epochPackets() != 256 ||
		c.offeredPps() != 50e6 || c.drainRecoveries() != 1 || c.cooldownEpochs() != 2 {
		t.Errorf("zero config defaults wrong: devices=%d seed=%d packets=%d pps=%g drain=%d cooldown=%d",
			c.devices(), c.seed(), c.epochPackets(), c.offeredPps(), c.drainRecoveries(), c.cooldownEpochs())
	}
	c = Config{Devices: 2, Seed: 9, EpochPackets: 10, OfferedPps: 1e6, DrainRecoveries: 3, CooldownEpochs: 5}
	if c.devices() != 2 || c.seed() != 9 || c.epochPackets() != 10 ||
		c.offeredPps() != 1e6 || c.drainRecoveries() != 3 || c.cooldownEpochs() != 5 {
		t.Error("explicit config values not honoured")
	}
	var u UpdateConfig
	if u.startEpoch() != 1 || u.rolloutRate() != 2 || u.canaryPackets() != 8 {
		t.Errorf("zero update defaults wrong: start=%d rate=%d canary=%d",
			u.startEpoch(), u.rolloutRate(), u.canaryPackets())
	}
	u = UpdateConfig{StartEpoch: 4, RolloutRate: 1, CanaryPackets: 16}
	if u.startEpoch() != 4 || u.rolloutRate() != 2 || u.canaryPackets() != 16 {
		t.Error("explicit update values not honoured (rate below 2 must clamp to 2)")
	}
	u.RolloutRate = 5
	if u.rolloutRate() != 5 {
		t.Errorf("rollout rate 5 read back as %d", u.rolloutRate())
	}
}

// TestFleetConfigValidation pins the constructor's error paths.
func TestFleetConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("no app accepted")
	}
	if _, err := New(Config{App: apps.Toy(), Update: &UpdateConfig{}}); err == nil {
		t.Error("update config without a program accepted")
	}
}
