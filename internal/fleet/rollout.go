package fleet

import (
	"fmt"

	"ehdl/internal/benchreg"
	"ehdl/internal/ebpf"
	"ehdl/internal/faults"
	"ehdl/internal/liveupdate"
	"ehdl/internal/maps"
	"ehdl/internal/nic"
	"ehdl/internal/obs"
)

// RolloutPhase enumerates rollout state transitions; the value rides in
// the Aux field of KindRolloutPhase events.
type RolloutPhase uint64

// Rollout phases.
const (
	// PhaseStart: the rollout armed (fleet-wide).
	PhaseStart RolloutPhase = iota
	// PhaseDeviceUpdate: a device's canary update was scheduled.
	PhaseDeviceUpdate
	// PhaseDeviceSoaked: a device's update committed and its soak epoch
	// cleared the throughput floor.
	PhaseDeviceSoaked
	// PhaseHalt: a canary divergence, typed update failure or
	// throughput regression stopped the rollout (Aux2: the device).
	PhaseHalt
	// PhaseRevert: a reverse update (old program) was scheduled on an
	// already-updated device.
	PhaseRevert
	// PhaseDone: every surviving device runs the new program.
	PhaseDone
	// PhaseRolledBack: the halt finished reverting; every surviving
	// device runs the old program again.
	PhaseRolledBack
)

var phaseNames = [...]string{
	"start", "device-update", "device-soaked", "halt", "revert", "done", "rolled-back",
}

// String returns the canonical phase name.
func (p RolloutPhase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", uint64(p))
}

// fleetWide marks a KindRolloutPhase event not tied to one device.
const fleetWide = ^uint64(0)

// rolloutState is the rolling-update state machine. One device is in
// flight at a time: its update epoch runs the liveupdate canary, the
// following soak epoch must clear the benchreg throughput floor, and
// only then is the next device scheduled. Any typed update failure,
// canary divergence or soak regression halts the rollout and reverts
// the already-updated devices one epoch at a time with the same
// staged-update machinery, old program forward.
type rolloutState struct {
	cfg     *UpdateConfig
	started bool

	// pending is the device whose update was scheduled for the current
	// epoch (-1 none); soaking is the device whose post-update
	// throughput is gated (-1 none), for soakLeft more epochs — the
	// rollout rate is the update epoch plus rolloutRate()-1 soak epochs.
	pending  int
	soaking  int
	soakLeft int
	lastRep  nic.Report

	updated []int // committed devices, in update order (revert stack)
	next    int   // next device id to consider

	halted        bool
	haltReason    string
	revertPending int
	reverts       int
	done          bool
	rolledBack    bool
}

func newRollout(cfg *UpdateConfig, devices int) *rolloutState {
	return &rolloutState{cfg: cfg, pending: -1, soaking: -1, revertPending: -1}
}

// servingProg returns the program a device serves after its most recent
// committed update this epoch: the new program while rolling forward,
// the old one when the commit was a revert.
func (r *rolloutState) servingProg(c *Controller, d *device) *ebpf.Program {
	if r.halted && r.revertPending == d.id {
		return c.prog
	}
	return r.cfg.Prog
}

// schedule runs at the top of each epoch, before traffic partitions.
func (r *rolloutState) schedule(c *Controller) {
	if r.done || r.rolledBack || r.pending >= 0 {
		return
	}
	if !r.started {
		if c.epoch < r.cfg.startEpoch() {
			return
		}
		r.started = true
		c.event(obs.KindRolloutPhase, uint64(PhaseStart), fleetWide)
	}
	if r.halted {
		r.scheduleRevert(c)
		return
	}
	if r.soaking >= 0 {
		// The soak epoch is evaluated after serving; nothing new starts
		// while one is open.
		return
	}
	// Next healthy, not-yet-updated device in id order.
	for _, d := range c.devices {
		if d.state != stateHealthy || d.updated {
			continue
		}
		ucfg := r.deviceUpdate(c, d, r.cfg.Prog, r.cfg.Setup)
		if err := d.sh.ScheduleUpdate(0, ucfg); err != nil {
			r.halt(c, d, fmt.Sprintf("schedule: %v", err))
			return
		}
		r.pending = d.id
		r.lastRep = nic.Report{}
		c.event(obs.KindRolloutPhase, uint64(PhaseDeviceUpdate), uint64(d.id))
		c.count(MetricUpdates, 1)
		return
	}
	// No candidates left: every surviving device is updated (or none
	// ever will be).
	r.done = true
	c.event(obs.KindRolloutPhase, uint64(PhaseDone), fleetWide)
}

// scheduleRevert walks the revert stack, one device per epoch.
func (r *rolloutState) scheduleRevert(c *Controller) {
	for len(r.updated) > 0 {
		id := r.updated[len(r.updated)-1]
		d := c.devices[id]
		if d.state != stateHealthy || d.reverted {
			r.updated = r.updated[:len(r.updated)-1]
			continue
		}
		ucfg := r.deviceUpdate(c, d, c.prog, c.cfg.App.SetupHost)
		if err := d.sh.ScheduleUpdate(0, ucfg); err != nil {
			// A revert that cannot even schedule leaves the device on
			// the new program; record and move on.
			r.updated = r.updated[:len(r.updated)-1]
			continue
		}
		r.pending = id
		r.revertPending = id
		r.lastRep = nic.Report{}
		c.event(obs.KindRolloutPhase, uint64(PhaseRevert), uint64(id))
		c.count(MetricReverts, 1)
		return
	}
	r.rolledBack = true
	c.event(obs.KindRolloutPhase, uint64(PhaseRolledBack), fleetWide)
}

// deviceUpdate builds the staged-update configuration for one device:
// full mirroring with a small canary so a short epoch batch clears it,
// and a seeded shadow fault campaign when the chaos plan targets this
// device's shadow.
func (r *rolloutState) deviceUpdate(c *Controller, d *device, prog *ebpf.Program, setup func(*maps.Set) error) liveupdate.Config {
	ucfg := liveupdate.Config{
		Prog:              prog,
		Opts:              c.cfg.Opts,
		Setup:             setup,
		CanaryFrac:        1,
		CanaryPackets:     r.cfg.canaryPackets(),
		PostVerifyPackets: r.cfg.canaryPackets(),
		Seed:              mix(c.cfg.seed() + 200 + int64(d.id)),
		Sim:               c.cfg.Shell.Sim,
	}
	ucfg.Sim.Trace = nil
	ucfg.Sim.Metrics = nil
	if fc, ok := r.cfg.ShadowChaos[d.id]; ok && fc.Enabled() {
		ucfg.Sim.Faults = faults.New(fc)
	}
	return ucfg
}

// evaluate runs after every device served: it grades the in-flight
// update epoch and the soak epoch, and trips the halt on any failure.
func (r *rolloutState) evaluate(c *Controller) {
	if r.pending >= 0 {
		d := c.devices[r.pending]
		rep := r.lastRep
		id := r.pending
		r.pending = -1
		switch {
		case d.state == stateDead || d.state == stateQuarantined:
			// The device died before or during its update epoch: a
			// device failure, not a program failure — the rollout
			// skips it and continues.
			if r.revertPending == id {
				r.revertPending = -1
			}
		case r.revertPending == id:
			// A revert epoch completed (or failed; either way this
			// device's revert attempt is spent).
			r.revertPending = -1
			if rep.UpdatesCompleted > 0 {
				d.updated = false
				d.reverted = true
				r.reverts++
			}
			if len(r.updated) > 0 && r.updated[len(r.updated)-1] == id {
				r.updated = r.updated[:len(r.updated)-1]
			}
		case rep.UpdatesRolledBack > 0 || rep.UpdateFailure != "":
			r.halt(c, d, fmt.Sprintf("device %d: %s", id, rep.UpdateFailure))
		case rep.UpdatesCompleted > 0:
			d.updated = true
			r.updated = append(r.updated, id)
			r.soaking = id
			r.soakLeft = r.cfg.rolloutRate() - 1
		default:
			// The update never began (no traffic reached the device):
			// leave it un-updated; schedule() will retry it.
		}
		return
	}
	if r.soaking >= 0 && !r.halted {
		d := c.devices[r.soaking]
		id := r.soaking
		if d.state == stateDead || d.state == stateQuarantined {
			// The device died mid-soak: a device failure, not a program
			// failure — the rollout moves on.
			r.soaking = -1
			return
		}
		// The soak gate compares each soak epoch's post-update
		// throughput against the device's last clean pre-update epoch.
		// It only fires when the device actually served traffic this
		// epoch and a baseline exists; a soak epoch with no routed flows
		// is accepted (nothing measurable regressed).
		if d.state == stateHealthy && d.baselineMpps > 0 && d.lastMppsEpoch == c.epoch &&
			benchreg.Regressed(d.baselineMpps, d.lastMpps, r.cfg.TolerancePct) {
			r.soaking = -1
			r.halt(c, d, fmt.Sprintf("device %d: post-update throughput regressed (%.1f -> %.1f Mpps)",
				id, d.baselineMpps, d.lastMpps))
			return
		}
		r.soakLeft--
		if r.soakLeft <= 0 {
			r.soaking = -1
			c.event(obs.KindRolloutPhase, uint64(PhaseDeviceSoaked), uint64(id))
		}
	}
}

// halt stops the forward rollout and arms the revert walk.
func (r *rolloutState) halt(c *Controller, d *device, reason string) {
	if r.halted {
		return
	}
	r.halted = true
	r.haltReason = reason
	r.soaking = -1
	c.event(obs.KindRolloutPhase, uint64(PhaseHalt), uint64(d.id))
	if len(r.updated) == 0 {
		r.rolledBack = true
		c.event(obs.KindRolloutPhase, uint64(PhaseRolledBack), fleetWide)
	}
}

// outcome summarises the rollout for the report: "done" (every
// surviving device updated), "rolled-back" (halted and fully reverted),
// "halted" (halted, reverts still outstanding when the run ended),
// "rolling" (ran out of epochs mid-rollout) or "idle".
func (r *rolloutState) outcome() string {
	switch {
	case r.rolledBack:
		return "rolled-back"
	case r.halted:
		return "halted"
	case r.done:
		return "done"
	case r.started:
		return "rolling"
	default:
		return "idle"
	}
}
