package fleet

import "sort"

// ring is the cluster-level consistent-hash ring: flows are partitioned
// across devices one level above each device's own RSS dispatcher. Every
// member contributes vnodes points derived from a splitmix finalizer, so
// the partition is deterministic in (members, vnodes) alone — two
// controllers built from the same seed agree on every flow's home — and
// removing a device moves only the flows that lived on its arcs, never
// reshuffling the survivors among themselves.
type ring struct {
	vnodes int
	member map[int]bool
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint32
	device int
}

func newRing(vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = 16
	}
	return &ring{vnodes: vnodes, member: map[int]bool{}}
}

// pointHash spreads (device, vnode) over the hash space with the same
// splitmix finalizer the fault injector uses for stream forking.
func pointHash(device, vnode int) uint32 {
	v := uint64(device)<<32 | uint64(uint32(vnode))
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return uint32(v)
}

// Add admits a device (idempotent).
func (r *ring) Add(device int) {
	if r.member[device] {
		return
	}
	r.member[device] = true
	r.rebuild()
}

// Remove drains a device (idempotent).
func (r *ring) Remove(device int) {
	if !r.member[device] {
		return
	}
	delete(r.member, device)
	r.rebuild()
}

// Has reports ring membership.
func (r *ring) Has(device int) bool { return r.member[device] }

// Len returns the member count.
func (r *ring) Len() int { return len(r.member) }

func (r *ring) rebuild() {
	r.points = r.points[:0]
	for d := range r.member {
		for v := 0; v < r.vnodes; v++ {
			r.points = append(r.points, ringPoint{pointHash(d, v), d})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Ties (vanishingly rare) break on device id so the order never
		// depends on map iteration.
		return r.points[i].device < r.points[j].device
	})
}

// Lookup maps a flow hash to its home device, walking clockwise to the
// first point at or past the hash and wrapping at the top. Returns
// (-1, false) on an empty ring.
func (r *ring) Lookup(hash uint32) (int, bool) {
	if len(r.points) == 0 {
		return -1, false
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= hash })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].device, true
}
