package fleet

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"ehdl/internal/apps"
	"ehdl/internal/durable"
	"ehdl/internal/faults"
	"ehdl/internal/hwsim"
	"ehdl/internal/nic"
	"ehdl/internal/obs"
	"ehdl/internal/protect"
)

// recoveryScenario is one fleet shape the kill-anywhere gate sweeps:
// the configs are chosen so that between them every rollout phase
// (start, device-update, device-soaked, halt, revert, done,
// rolled-back), every rebalance direction (kill, quarantine, drain,
// readmit) and every epoch-boundary commit point fires at least once.
type recoveryScenario struct {
	name   string
	epochs int
	cfg    func(t *testing.T) Config
}

func recoveryScenarios(t *testing.T) []recoveryScenario {
	return []recoveryScenario{
		{
			// Chaos mid-rollout: a kill and a silent corruption land while
			// the canary update walks the fleet to "done".
			name: "chaos-rollout", epochs: 10,
			cfg: func(t *testing.T) Config {
				return Config{
					Devices:      3,
					App:          apps.Toy(),
					Seed:         23,
					EpochPackets: 120,
					Verify:       true,
					Update:       toyUpdate(t),
					KillAt:       map[int][]int{3: {1}},
					CorruptAt:    map[int][]int{5: {2}},
				}
			},
		},
		{
			// Shadow chaos halts the rollout mid-flight: the crash sweep
			// kills the controller inside halt, revert and rolled-back.
			name: "halt-rollback", epochs: 8,
			cfg: func(t *testing.T) Config {
				u := toyUpdate(t)
				u.ShadowChaos = map[int]faults.Config{
					1: faults.Single(faults.SEUMapEntry, 0.9, 99),
				}
				return Config{
					Devices:      3,
					App:          apps.Toy(),
					Seed:         31,
					EpochPackets: 96,
					Update:       u,
				}
			},
		},
		{
			// Hair-trigger watchdogs drain every device and re-admit it
			// after the jittered cool-down: crashes inside drain and
			// readmit, mid-cool-down resume, and the fleet RNG position.
			name: "drain-readmit", epochs: 6,
			cfg: func(t *testing.T) Config {
				return Config{
					Devices:      2,
					App:          apps.Toy(),
					Seed:         47,
					EpochPackets: 48,
					Shell: nic.ShellConfig{Sim: hwsim.Config{
						Protection:            protect.LevelECC,
						WatchdogCycles:        2,
						MaxRecoveries:         -1,
						RecoveryBackoffCycles: 4,
					}},
					CooldownEpochs: 2,
				}
			},
		},
	}
}

func mustRun(t *testing.T, cfg Config, epochs int) (Report, *Controller) {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(epochs)
	if err != nil {
		t.Fatal(err)
	}
	return rep, c
}

func reportJSON(t *testing.T, rep Report) string {
	t.Helper()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestFleetJournalFreshRunMatchesPlain: attaching a journal must not
// perturb execution — a journaled run's report is byte-identical to the
// same-seed run without one.
func TestFleetJournalFreshRunMatchesPlain(t *testing.T) {
	for _, sc := range recoveryScenarios(t) {
		t.Run(sc.name, func(t *testing.T) {
			plain, _ := mustRun(t, sc.cfg(t), sc.epochs)
			jcfg := sc.cfg(t)
			jcfg.JournalDir = t.TempDir()
			journaled, c := mustRun(t, jcfg, sc.epochs)
			if a, b := reportJSON(t, plain), reportJSON(t, journaled); a != b {
				t.Errorf("journal perturbed the run:\nplain     %s\njournaled %s", a, b)
			}
			if ri := c.RecoveryInfo(); ri.Resumed {
				t.Errorf("fresh journaled run reported Resumed: %+v", ri)
			}
		})
	}
}

// TestFleetKillAnywhereRecoveryGate is the release gate: for every
// crash site a scenario passes — every epoch boundary (pre-commit,
// pre-sync, post-commit, post-snapshot) and every rollout/revert/
// drain/readmit transition — the controller is killed there, recovered
// with Resume, and the final report must be byte-identical to the
// uninterrupted same-seed run with the loss books balancing exactly.
// One site per scenario additionally has a torn partial record appended
// to the journal before resuming.
func TestFleetKillAnywhereRecoveryGate(t *testing.T) {
	for _, sc := range recoveryScenarios(t) {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			baseline, _ := mustRun(t, sc.cfg(t), sc.epochs)
			want := reportJSON(t, baseline)
			if !baseline.Accounted() {
				t.Fatalf("baseline books don't balance: %+v", baseline)
			}

			// Probe pass: enumerate every crash site this scenario fires.
			probeCfg := sc.cfg(t)
			probeCfg.JournalDir = t.TempDir()
			probe, err := New(probeCfg)
			if err != nil {
				t.Fatal(err)
			}
			probe.crashProbe = map[string]int{}
			if _, err := probe.Run(sc.epochs); err != nil {
				t.Fatal(err)
			}
			var sites []string
			for s := range probe.crashProbe {
				sites = append(sites, s)
			}
			sort.Strings(sites)
			if len(sites) < sc.epochs*3 {
				t.Fatalf("probe found only %d crash sites: %v", len(sites), sites)
			}
			t.Logf("%s: %d crash sites over %d epochs", sc.name, len(sites), sc.epochs)

			stride := 1
			if testing.Short() {
				stride = 4
			}
			for i, site := range sites {
				if i%stride != 0 {
					continue
				}
				dir := t.TempDir()
				crashCfg := sc.cfg(t)
				crashCfg.JournalDir = dir
				crashed, err := New(crashCfg)
				if err != nil {
					t.Fatal(err)
				}
				crashed.crashAt = site
				if _, err := crashed.Run(sc.epochs); !errors.Is(err, errSimulatedCrash) {
					t.Fatalf("site %q: crash did not fire (err %v)", site, err)
				}

				// One deterministic site per scenario also gets a torn
				// partial record appended — the footprint of an append the
				// kill interrupted halfway.
				torn := i == 0
				if torn {
					f, err := os.OpenFile(filepath.Join(dir, journalFileName), os.O_WRONLY|os.O_APPEND, 0o644)
					if err != nil {
						t.Fatal(err)
					}
					if _, err := f.Write([]byte{0x55, 0x01, 0x00, 0x00, 0x02, 0xde, 0xad}); err != nil {
						t.Fatal(err)
					}
					f.Close()
				}

				resumeCfg := sc.cfg(t)
				resumeCfg.JournalDir = dir
				resumeCfg.Resume = true
				resumed, err := New(resumeCfg)
				if err != nil {
					t.Fatal(err)
				}
				rep, err := resumed.Run(sc.epochs)
				if err != nil {
					t.Fatalf("site %q: resume failed: %v", site, err)
				}
				if got := reportJSON(t, rep); got != want {
					t.Fatalf("site %q: resumed report diverged:\nwant %s\ngot  %s", site, want, got)
				}
				if !rep.Accounted() {
					t.Errorf("site %q: resumed books don't balance", site)
				}
				ri := resumed.RecoveryInfo()
				if !ri.Resumed {
					t.Errorf("site %q: recovery info not marked resumed: %+v", site, ri)
				}
				if torn && ri.TornBytesTruncated == 0 {
					t.Errorf("site %q: torn tail injected but none truncated", site)
				}
			}
		})
	}
}

// TestFleetResumeAfterComplete: resuming a journal whose run finished
// replays everything, verifies the journaled final-report digest, and
// returns the identical report — including when the newest snapshot was
// corrupted and recovery fell back to an older one.
func TestFleetResumeAfterComplete(t *testing.T) {
	sc := recoveryScenarios(t)[0]
	dir := t.TempDir()
	cfg := sc.cfg(t)
	cfg.JournalDir = dir
	cfg.SnapshotEvery = 3 // several snapshots to fall back across
	first, _ := mustRun(t, cfg, sc.epochs)
	want := reportJSON(t, first)

	// Clean completed resume.
	cfg.Resume = true
	rep, c := mustRun(t, cfg, sc.epochs)
	if got := reportJSON(t, rep); got != want {
		t.Fatalf("completed resume diverged:\nwant %s\ngot  %s", want, got)
	}
	ri := c.RecoveryInfo()
	if !ri.Resumed || !ri.CompletedPrior || ri.ReplayedEpochs != sc.epochs {
		t.Errorf("completed resume info: %+v", ri)
	}
	if ri.SnapshotEpoch < 0 {
		t.Errorf("no snapshot verified during replay: %+v", ri)
	}

	// Corrupt the newest snapshot: recovery skips it and verifies the
	// previous one instead.
	newest := filepath.Join(dir, durable.SnapshotName(ri.SnapshotEpoch))
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, c = mustRun(t, cfg, sc.epochs)
	if got := reportJSON(t, rep); got != want {
		t.Fatalf("resume after snapshot corruption diverged")
	}
	ri2 := c.RecoveryInfo()
	if ri2.SnapshotsSkipped == 0 || ri2.SnapshotEpoch >= ri.SnapshotEpoch {
		t.Errorf("corrupt snapshot not skipped to an older one: %+v", ri2)
	}
}

// TestFleetResumeConfigMismatch: a resume whose configuration does not
// fingerprint-match the journaled run is refused with the typed error.
func TestFleetResumeConfigMismatch(t *testing.T) {
	sc := recoveryScenarios(t)[0]
	dir := t.TempDir()
	cfg := sc.cfg(t)
	cfg.JournalDir = dir
	mustRun(t, cfg, sc.epochs)

	for name, mut := range map[string]func(*Config, *int){
		"seed":    func(c *Config, _ *int) { c.Seed++ },
		"devices": func(c *Config, _ *int) { c.Devices++ },
		"epochs":  func(_ *Config, e *int) { *e++ },
		"chaos":   func(c *Config, _ *int) { c.KillAt = nil },
	} {
		bad := sc.cfg(t)
		bad.JournalDir = dir
		bad.Resume = true
		epochs := sc.epochs
		mut(&bad, &epochs)
		c, err := New(bad)
		if err != nil {
			t.Fatal(err)
		}
		_, err = c.Run(epochs)
		var cm *ConfigMismatchError
		if !errors.As(err, &cm) {
			t.Errorf("%s mutation: err %v, want *ConfigMismatchError", name, err)
		}
		if err != nil && !DurabilityError(err) {
			t.Errorf("%s mutation: DurabilityError(%v) = false", name, err)
		}
	}
}

// TestFleetJournalGuards pins the refusal paths: an existing journal
// without Resume, Resume without a journal dir, and corruption of
// committed journal bytes.
func TestFleetJournalGuards(t *testing.T) {
	sc := recoveryScenarios(t)[0]
	dir := t.TempDir()
	cfg := sc.cfg(t)
	cfg.JournalDir = dir
	mustRun(t, cfg, sc.epochs)

	// Same dir, no Resume.
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(sc.epochs); !errors.Is(err, ErrJournalExists) {
		t.Errorf("journal reuse without Resume: err %v, want ErrJournalExists", err)
	}

	// Resume without a journal dir.
	nr := sc.cfg(t)
	nr.Resume = true
	c, err = New(nr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(sc.epochs); err == nil || !strings.Contains(err.Error(), "journal directory") {
		t.Errorf("Resume without JournalDir: err %v", err)
	}

	// Bit-flip a committed record: resume must refuse with the typed
	// corruption error, not truncate silently.
	path := filepath.Join(dir, journalFileName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	cfg.Resume = true
	c, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(sc.epochs)
	var ce *durable.CorruptRecordError
	if !errors.As(err, &ce) {
		t.Errorf("corrupted journal resume: err %v, want *CorruptRecordError", err)
	}
	if err != nil && !DurabilityError(err) {
		t.Error("corruption not classified as a durability error")
	}
}

// TestFleetTenantJournalResume: the journal path also covers tenant
// mode (no map capture, device state only) — crash, resume, identical
// report.
func TestFleetTenantJournalResume(t *testing.T) {
	mkCfg := func() Config {
		return Config{
			Devices:      2,
			Tenants:      tenantSpecs(t),
			Seed:         7,
			EpochPackets: 64,
		}
	}
	baseline, _ := mustRun(t, mkCfg(), 6)
	want := reportJSON(t, baseline)

	dir := t.TempDir()
	cfg := mkCfg()
	cfg.JournalDir = dir
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.crashAt = "epoch:e3:post-commit"
	if _, err := c.Run(6); !errors.Is(err, errSimulatedCrash) {
		t.Fatalf("tenant crash did not fire: %v", err)
	}
	cfg.Resume = true
	rep, rc := mustRun(t, cfg, 6)
	if got := reportJSON(t, rep); got != want {
		t.Fatalf("tenant resume diverged:\nwant %s\ngot  %s", want, got)
	}
	if ri := rc.RecoveryInfo(); !ri.Resumed || ri.ReplayedEpochs != 4 {
		t.Errorf("tenant recovery info: %+v", ri)
	}
}

// TestFleetDurableEventCoverage proves the journal-owned event classes
// (exempted from the simulator-side coverage test) are emitted and the
// durable.* metrics accumulate, across a crash and its recovery.
func TestFleetDurableEventCoverage(t *testing.T) {
	sc := recoveryScenarios(t)[0]
	dir := t.TempDir()
	cfg := sc.cfg(t)
	cfg.JournalDir = dir
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.crashAt = "epoch:e5:pre-commit"
	if _, err := c.Run(sc.epochs); !errors.Is(err, errSimulatedCrash) {
		t.Fatalf("crash did not fire: %v", err)
	}

	tr := obs.NewTracer(8192)
	reg := obs.NewRegistry()
	cfg.Resume = true
	cfg.Trace = tr
	cfg.Metrics = reg
	rc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Run(sc.epochs); err != nil {
		t.Fatal(err)
	}
	seen := map[obs.Kind]bool{}
	for _, ev := range tr.Recent() {
		seen[ev.Kind] = true
	}
	for _, k := range []obs.Kind{obs.KindJournalCommit, obs.KindStateSnapshot, obs.KindReplayEpoch} {
		if !seen[k] {
			t.Errorf("journaled run never emitted %q", k)
		}
	}
	if v, _ := reg.CounterValue(MetricReplayedEpochs); v != 5 {
		t.Errorf("%s = %d, want 5", MetricReplayedEpochs, v)
	}
	for _, m := range []string{durable.MetricAppends, durable.MetricCommits, durable.MetricSnapshotsWritten} {
		if v, _ := reg.CounterValue(m); v == 0 {
			t.Errorf("%s never counted", m)
		}
	}
}

// TestFleetReplayDivergenceDetected: a journal whose epoch digest does
// not match what replay reproduces must fail with the typed divergence
// error instead of silently resuming a different run. The tampered
// digest decodes cleanly (the record is re-framed with a valid CRC), so
// only the replay verification can catch it.
func TestFleetReplayDivergenceDetected(t *testing.T) {
	sc := recoveryScenarios(t)[0]
	dir := t.TempDir()
	cfg := sc.cfg(t)
	cfg.JournalDir = dir
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.crashAt = "epoch:e4:post-commit"
	if _, err := c.Run(sc.epochs); !errors.Is(err, errSimulatedCrash) {
		t.Fatalf("crash did not fire: %v", err)
	}

	// Rewrite the journal with one epoch digest altered, CRC intact.
	path := filepath.Join(dir, journalFileName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, torn, err := durable.Decode(data)
	if err != nil || torn != 0 {
		t.Fatalf("decode crashed journal: torn %d, err %v", torn, err)
	}
	var er struct {
		Epoch  int    `json:"epoch"`
		Digest string `json:"digest"`
	}
	if err := json.Unmarshal(recs[3].Payload, &er); err != nil {
		t.Fatal(err)
	}
	if er.Digest[0] == 'f' {
		er.Digest = "0" + er.Digest[1:]
	} else {
		er.Digest = "f" + er.Digest[1:]
	}
	recs[3].Payload, err = json.Marshal(er)
	if err != nil {
		t.Fatal(err)
	}
	out := durable.EncodeHeader()
	for _, r := range recs {
		out = append(out, durable.EncodeRecord(r)...)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}

	cfg.Resume = true
	rc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = rc.Run(sc.epochs)
	var rd *ReplayDivergenceError
	if !errors.As(err, &rd) {
		t.Fatalf("tampered digest resumed: err %v, want *ReplayDivergenceError", err)
	}
	if rd.Epoch != 2 {
		t.Errorf("divergence flagged at epoch %d, want 2 (record 3 = epoch 2)", rd.Epoch)
	}
	if !DurabilityError(err) {
		t.Error("divergence not classified as a durability error")
	}
}
