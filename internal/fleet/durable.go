package fleet

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"ehdl/internal/durable"
	"ehdl/internal/faults"
	"ehdl/internal/nic"
	"ehdl/internal/obs"
)

// This file threads the durable write-ahead journal through the fleet
// controller. Every epoch the controller canonicalises its full state —
// ring membership, rollout/revert state machine, drain cool-downs,
// per-device benchreg baselines, fleet RNG position, map state via the
// canonical SetSnapshot encoding — into one deterministic JSON blob,
// journals its digest, fsyncs, and periodically writes the whole blob
// as a snapshot file. The commit happens before Run proceeds past the
// epoch, so by the time an epoch's effects are observable to the caller
// its record is durable.
//
// Recovery leans on the property the chaos gate already proves: a fleet
// run is a pure function of its fingerprinted configuration, so
// re-executing epochs from zero reconstructs every bit of controller,
// device, mirror and traffic-generator state — including the RNG stream
// positions that live inside per-device fault injectors and cannot be
// captured from outside. The journal turns that replay from "trust the
// determinism" into "verify it": each re-executed epoch must reproduce
// the journaled digest exactly, and the epoch covered by the newest
// valid snapshot must reproduce the snapshot byte-for-byte, or resume
// fails with a typed *ReplayDivergenceError instead of silently
// diverging from the crashed run.

// Journal record types.
const (
	// recConfig is the first record of every journal: the run's
	// fingerprinted configuration, verified on resume.
	recConfig byte = 1
	// recEpoch commits one epoch: {"epoch":N,"digest":"sha256-hex"}.
	recEpoch byte = 2
	// recComplete marks a finished run and pins the final report digest.
	recComplete byte = 3
)

// journalFileName is the journal inside Config.JournalDir.
const journalFileName = "journal.wal"

// MetricReplayedEpochs counts epochs re-executed and digest-verified
// during crash recovery.
const MetricReplayedEpochs = "fleet.replayed_epochs"

// ErrJournalExists reports a journal directory holding a previous run
// opened without Resume: refusing to overwrite it is the safe default.
var ErrJournalExists = errors.New("fleet: journal holds a previous run (pass -resume to recover it, or use a fresh directory)")

// errSimulatedCrash is what a crash-site panic resolves to: the
// in-process stand-in for kill -9 the recovery gate drives.
var errSimulatedCrash = errors.New("fleet: simulated crash")

// simCrash is the panic payload of an armed crash site.
type simCrash string

// ConfigMismatchError reports a resume whose configuration fingerprint
// does not match the journaled run — replaying a different config would
// silently produce a different fleet, so it is refused up front.
type ConfigMismatchError struct {
	Path       string
	GotDigest  string // fingerprint of the resuming config
	WantDigest string // fingerprint journaled by the original run
}

func (e *ConfigMismatchError) Error() string {
	return fmt.Sprintf("fleet: %s: resume config fingerprint %.12s does not match the journaled run %.12s",
		e.Path, e.GotDigest, e.WantDigest)
}

// ReplayDivergenceError reports a recovery replay that failed to
// reproduce the journaled run: a re-executed epoch whose state digest,
// snapshot bytes or final report differ from what the crashed run
// committed. Epoch is -1 for the final-report check.
type ReplayDivergenceError struct {
	Epoch int
	What  string
	Got   string
	Want  string
}

func (e *ReplayDivergenceError) Error() string {
	return fmt.Sprintf("fleet: replay diverged at epoch %d: %s %.12s does not reproduce the journaled %.12s",
		e.Epoch, e.What, e.Got, e.Want)
}

// DurabilityError reports whether err is a journal/recovery failure —
// the class ehdl-fleet maps to its own exit code, distinct from config
// errors and rollback outcomes.
func DurabilityError(err error) bool {
	var cm *ConfigMismatchError
	var rd *ReplayDivergenceError
	var cr *durable.CorruptRecordError
	return errors.As(err, &cm) || errors.As(err, &rd) || errors.As(err, &cr) ||
		errors.Is(err, ErrJournalExists) || errors.Is(err, errSimulatedCrash)
}

// RecoveryInfo summarises what recovery did. It is deliberately NOT
// part of Report: the recovery gate requires a resumed run's report to
// be byte-identical to the uninterrupted run's, so everything that
// differs between the two lives here.
type RecoveryInfo struct {
	// Resumed is true when the journal held a previous run.
	Resumed bool `json:"resumed"`
	// ReplayedEpochs counts epochs re-executed under digest
	// verification before live execution took over.
	ReplayedEpochs int `json:"replayed_epochs"`
	// TornBytesTruncated is the size of the partial tail record a
	// crashed append left behind, discarded on open.
	TornBytesTruncated int64 `json:"torn_bytes_truncated"`
	// SnapshotEpoch is the epoch of the newest valid snapshot
	// byte-verified during replay (-1 when none was found).
	SnapshotEpoch int `json:"snapshot_epoch"`
	// SnapshotsSkipped counts damaged snapshot files skipped over.
	SnapshotsSkipped int `json:"snapshots_skipped"`
	// CompletedPrior is true when the journal already held a complete
	// run; the replay then verifies the final report digest too.
	CompletedPrior bool `json:"completed_prior"`
}

// durState is the controller's durability attachment.
type durState struct {
	dir string
	j   *durable.Journal
	opt durable.Options

	// replayDigests[e] is the journaled state digest of epoch e; the
	// replayed prefix of a resumed run is verified against it.
	replayDigests []string
	completed     bool
	completeDig   string
	// snapEpoch/snapPayload pin the newest valid snapshot for the
	// byte-compare when replay passes its epoch (-1: none).
	snapEpoch   int
	snapPayload []byte

	info RecoveryInfo
}

// epochRec is the recEpoch payload.
type epochRec struct {
	Epoch  int    `json:"epoch"`
	Digest string `json:"digest"`
}

// completeRec is the recComplete payload.
type completeRec struct {
	Digest string `json:"digest"`
}

func digestOf(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// ---- configuration fingerprint ----------------------------------------

// sanitizeShell clears the simulator's pointer attachments (tracer,
// registry, pre-built injector) so the shell template marshals; none of
// them shapes the deterministic run.
func sanitizeShell(sh nic.ShellConfig) nic.ShellConfig {
	sh.Sim.Trace = nil
	sh.Sim.Metrics = nil
	sh.Sim.Faults = nil
	return sh
}

type fpUpdate struct {
	Prog          string                `json:"prog"`
	StartEpoch    int                   `json:"start_epoch"`
	RolloutRate   int                   `json:"rollout_rate"`
	TolerancePct  float64               `json:"tolerance_pct"`
	CanaryPackets int                   `json:"canary_packets"`
	ShadowChaos   map[int]faults.Config `json:"shadow_chaos,omitempty"`
}

type fpTenant struct {
	Name    string          `json:"name"`
	App     string          `json:"app"`
	Share   float64         `json:"share"`
	VLAN    uint16          `json:"vlan"`
	SrcNet  uint32          `json:"src_net"`
	SrcMask uint32          `json:"src_mask"`
	Default bool            `json:"default"`
	Shell   nic.ShellConfig `json:"shell"`
}

// fingerprint is the deterministic identity of a fleet run: every
// configuration input that shapes execution, in fixed field order.
// (encoding/json sorts the map keys, so the int-keyed chaos schedules
// encode byte-stably too.)
type fingerprint struct {
	Schema          int                   `json:"schema"`
	Epochs          int                   `json:"epochs"`
	Devices         int                   `json:"devices"`
	App             string                `json:"app"`
	Seed            int64                 `json:"seed"`
	VNodes          int                   `json:"vnodes"`
	EpochPackets    int                   `json:"epoch_packets"`
	OfferedPps      float64               `json:"offered_pps"`
	Verify          bool                  `json:"verify"`
	Shell           nic.ShellConfig       `json:"shell"`
	Chaos           faults.Config         `json:"chaos"`
	KillAt          map[int][]int         `json:"kill_at,omitempty"`
	CorruptAt       map[int][]int         `json:"corrupt_at,omitempty"`
	Update          *fpUpdate             `json:"update,omitempty"`
	Tenants         []fpTenant            `json:"tenants,omitempty"`
	TenantBandPct   float64               `json:"tenant_band_pct"`
	DrainRecoveries uint64                `json:"drain_recoveries"`
	CooldownEpochs  int                   `json:"cooldown_epochs"`
	SnapshotEvery   int                   `json:"snapshot_every"`
}

// configFingerprint canonicalises the run configuration. The epoch
// count is part of the identity: a journal records one specific run,
// and resuming it for a different horizon would change what every
// journaled digest means.
func (c *Controller) configFingerprint(epochs int) ([]byte, error) {
	fp := fingerprint{
		Schema:          1,
		Epochs:          epochs,
		Devices:         c.cfg.devices(),
		Seed:            c.cfg.seed(),
		VNodes:          c.cfg.VNodes,
		EpochPackets:    c.cfg.epochPackets(),
		OfferedPps:      c.cfg.offeredPps(),
		Verify:          c.cfg.Verify,
		Shell:           sanitizeShell(c.cfg.Shell),
		Chaos:           c.cfg.Chaos,
		KillAt:          c.cfg.KillAt,
		CorruptAt:       c.cfg.CorruptAt,
		TenantBandPct:   c.cfg.TenantBandPct,
		DrainRecoveries: c.cfg.DrainRecoveries,
		CooldownEpochs:  c.cfg.CooldownEpochs,
		SnapshotEvery:   c.cfg.snapshotEvery(),
	}
	if c.cfg.App != nil {
		fp.App = c.cfg.App.Name
	}
	if u := c.cfg.Update; u != nil {
		fp.Update = &fpUpdate{
			Prog:          u.Prog.Name,
			StartEpoch:    u.startEpoch(),
			RolloutRate:   u.rolloutRate(),
			TolerancePct:  u.TolerancePct,
			CanaryPackets: u.canaryPackets(),
			ShadowChaos:   u.ShadowChaos,
		}
	}
	for _, sp := range c.cfg.Tenants {
		ft := fpTenant{
			Name: sp.Name, Share: sp.Share, VLAN: sp.VLAN,
			SrcNet: sp.SrcNet, SrcMask: sp.SrcMask, Default: sp.Default,
			Shell: sanitizeShell(sp.Shell),
		}
		if sp.App != nil {
			ft.App = sp.App.Name
		}
		fp.Tenants = append(fp.Tenants, ft)
	}
	b, err := json.Marshal(fp)
	if err != nil {
		return nil, fmt.Errorf("fleet: config fingerprint: %w", err)
	}
	return b, nil
}

// ---- canonical full-state encoding ------------------------------------

type persistedMap struct {
	Keys   []string `json:"k"`
	Values []string `json:"v"`
}

type persistedDevice struct {
	ID            int     `json:"id"`
	State         string  `json:"state"`
	CooldownUntil int     `json:"cooldown_until"`
	Corrupted     bool    `json:"corrupted"`
	DeathCause    string  `json:"death_cause"`
	Updated       bool    `json:"updated"`
	Reverted      bool    `json:"reverted"`
	BaselineMpps  float64 `json:"baseline_mpps"`
	LastMpps      float64 `json:"last_mpps"`
	LastMppsEpoch int     `json:"last_mpps_epoch"`
	Received      uint64  `json:"received"`
	Lost          uint64  `json:"lost"`
	Drains        int     `json:"drains"`
	InRing        bool    `json:"in_ring"`
	// Maps is the device's full map state in the canonical (key-sorted,
	// hex) encoding — single-pipeline devices only.
	Maps []persistedMap `json:"maps,omitempty"`
}

type persistedRollout struct {
	Started       bool   `json:"started"`
	Pending       int    `json:"pending"`
	Soaking       int    `json:"soaking"`
	SoakLeft      int    `json:"soak_left"`
	Updated       []int  `json:"updated"`
	Halted        bool   `json:"halted"`
	HaltReason    string `json:"halt_reason"`
	RevertPending int    `json:"revert_pending"`
	Reverts       int    `json:"reverts"`
	Done          bool   `json:"done"`
	RolledBack    bool   `json:"rolled_back"`
}

// persistedState is the full-state snapshot payload: everything the
// controller owns, in deterministic byte-stable JSON (fixed field
// order, canonical key-sorted map entries). Device-internal simulator
// state (fault-injector RNG streams, pipeline registers) is not
// captured — it is reconstructed by deterministic replay, which the
// journaled digests verify.
type persistedState struct {
	Schema int `json:"schema"`
	Epoch  int `json:"epoch"`
	// RNGDraws is the fleet RNG stream position (cool-down jitter
	// draws consumed so far).
	RNGDraws uint64            `json:"rng_draws"`
	Ring     []int             `json:"ring"`
	Report   Report            `json:"report"`
	Rollout  *persistedRollout `json:"rollout,omitempty"`
	Devices  []persistedDevice `json:"devices"`
}

// persistedState canonicalises the controller after epoch e.
func (c *Controller) persistedState(e int) persistedState {
	st := persistedState{Schema: 1, Epoch: e, RNGDraws: c.rngDraws, Ring: []int{}, Report: c.rep}
	for _, d := range c.devices {
		if c.ring.Has(d.id) {
			st.Ring = append(st.Ring, d.id)
		}
		pd := persistedDevice{
			ID: d.id, State: d.state.String(), CooldownUntil: d.cooldownUntil,
			Corrupted: d.corrupted, DeathCause: d.deathCause,
			Updated: d.updated, Reverted: d.reverted,
			BaselineMpps: d.baselineMpps, LastMpps: d.lastMpps, LastMppsEpoch: d.lastMppsEpoch,
			Received: d.received, Lost: d.lost, Drains: d.drains,
			InRing: c.ring.Has(d.id),
		}
		if d.sh != nil {
			for _, me := range d.sh.Maps().Snapshot().Canonical() {
				pm := persistedMap{Keys: []string{}, Values: []string{}}
				for i := range me.Keys {
					pm.Keys = append(pm.Keys, hex.EncodeToString(me.Keys[i]))
					pm.Values = append(pm.Values, hex.EncodeToString(me.Values[i]))
				}
				pd.Maps = append(pd.Maps, pm)
			}
		}
		st.Devices = append(st.Devices, pd)
	}
	if r := c.rollout; r != nil {
		st.Rollout = &persistedRollout{
			Started: r.started, Pending: r.pending, Soaking: r.soaking,
			SoakLeft: r.soakLeft, Updated: append([]int{}, r.updated...),
			Halted: r.halted, HaltReason: r.haltReason,
			RevertPending: r.revertPending, Reverts: r.reverts,
			Done: r.done, RolledBack: r.rolledBack,
		}
	}
	return st
}

// ---- crash sites -------------------------------------------------------

// crashSite is a named point the recovery gate can kill the controller
// at: when armed (crashAt) it panics with a simCrash the Run recover
// converts to errSimulatedCrash, exactly as if the process died there —
// no journal commit, no cleanup. Probe mode records every site a run
// passes so the gate can enumerate them. Sites never fire during
// recovery replay: the replayed prefix must re-execute unconditionally.
func (c *Controller) crashSite(name string) {
	if c.replaying {
		return
	}
	if c.crashProbe != nil {
		c.crashProbe[name]++
	}
	if name != "" && name == c.crashAt {
		panic(simCrash(name))
	}
}

// ---- journal open / commit / complete ----------------------------------

// durOpen attaches the journal: fresh runs write the config fingerprint
// record; resumed runs verify it, parse the epoch tail, and load the
// newest valid snapshot for the replay byte-check.
func (c *Controller) durOpen(epochs int) error {
	if c.cfg.JournalDir == "" {
		if c.cfg.Resume {
			return fmt.Errorf("fleet: Resume requires a journal directory")
		}
		return nil
	}
	if err := os.MkdirAll(c.cfg.JournalDir, 0o755); err != nil {
		return fmt.Errorf("fleet: journal dir: %w", err)
	}
	opt := durable.Options{Metrics: c.cfg.Metrics}
	path := filepath.Join(c.cfg.JournalDir, journalFileName)
	j, recs, torn, err := durable.OpenJournal(path, opt)
	if err != nil {
		return err
	}
	d := &durState{dir: c.cfg.JournalDir, j: j, opt: opt, snapEpoch: -1}
	d.info.SnapshotEpoch = -1
	d.info.TornBytesTruncated = torn

	fpJSON, err := c.configFingerprint(epochs)
	if err != nil {
		j.Close()
		return err
	}
	if len(recs) == 0 {
		// Fresh journal (or one torn back to nothing): start the run.
		if err := j.Append(durable.Record{Type: recConfig, Payload: fpJSON}); err != nil {
			j.Close()
			return err
		}
		if err := j.Commit(); err != nil {
			j.Close()
			return err
		}
		c.dur = d
		return nil
	}
	if !c.cfg.Resume {
		j.Close()
		return fmt.Errorf("%w: %s", ErrJournalExists, path)
	}
	if recs[0].Type != recConfig {
		j.Close()
		return &durable.CorruptRecordError{Path: path, Index: 0,
			Reason: fmt.Sprintf("first record has type %d, want config fingerprint", recs[0].Type)}
	}
	if got, want := digestOf(fpJSON), digestOf(recs[0].Payload); got != want {
		j.Close()
		return &ConfigMismatchError{Path: path, GotDigest: got, WantDigest: want}
	}
	for i, r := range recs[1:] {
		switch r.Type {
		case recEpoch:
			var er epochRec
			if jerr := json.Unmarshal(r.Payload, &er); jerr != nil || er.Epoch != len(d.replayDigests) {
				j.Close()
				return &durable.CorruptRecordError{Path: path, Index: i + 1,
					Reason: fmt.Sprintf("epoch record out of sequence (want epoch %d)", len(d.replayDigests))}
			}
			d.replayDigests = append(d.replayDigests, er.Digest)
		case recComplete:
			var cr completeRec
			if jerr := json.Unmarshal(r.Payload, &cr); jerr != nil {
				j.Close()
				return &durable.CorruptRecordError{Path: path, Index: i + 1, Reason: "malformed completion record"}
			}
			d.completed = true
			d.completeDig = cr.Digest
		default:
			j.Close()
			return &durable.CorruptRecordError{Path: path, Index: i + 1,
				Reason: fmt.Sprintf("unknown record type %d", r.Type)}
		}
	}
	se, payload, skipped, lerr := durable.LoadLatestSnapshot(c.cfg.JournalDir, opt)
	if lerr != nil {
		j.Close()
		return lerr
	}
	d.info.SnapshotsSkipped = skipped
	if se >= 0 && se < len(d.replayDigests) {
		d.snapEpoch, d.snapPayload = se, payload
		d.info.SnapshotEpoch = se
	}
	d.info.Resumed = true
	d.info.CompletedPrior = d.completed
	c.replaying = len(d.replayDigests) > 0
	c.dur = d
	return nil
}

// durEpoch runs at the bottom of every epoch. Replayed epochs are
// verified against the journaled digest (and the snapshot bytes at the
// snapshot epoch); live epochs append and fsync their record before Run
// proceeds, then write the periodic snapshot.
func (c *Controller) durEpoch(e, epochs int) error {
	if c.dur == nil {
		return nil
	}
	d := c.dur
	payload, err := json.Marshal(c.persistedState(e))
	if err != nil {
		return fmt.Errorf("fleet: encode state: %w", err)
	}
	digest := digestOf(payload)
	if e < len(d.replayDigests) {
		if digest != d.replayDigests[e] {
			return &ReplayDivergenceError{Epoch: e, What: "re-executed state digest", Got: digest, Want: d.replayDigests[e]}
		}
		snapHit := uint64(0)
		if e == d.snapEpoch {
			if !bytes.Equal(payload, d.snapPayload) {
				return &ReplayDivergenceError{Epoch: e, What: "snapshot bytes",
					Got: digestOf(payload), Want: digestOf(d.snapPayload)}
			}
			snapHit = 1
		}
		d.info.ReplayedEpochs++
		c.count(MetricReplayedEpochs, 1)
		c.event(obs.KindReplayEpoch, snapHit, 0)
		if e == len(d.replayDigests)-1 {
			// Caught up with the journal tail: live execution (and crash
			// sites) take over from the next statement on.
			c.replaying = false
		}
		return nil
	}
	c.crashSite(fmt.Sprintf("epoch:e%d:pre-commit", e))
	rec, err := json.Marshal(epochRec{Epoch: e, Digest: digest})
	if err != nil {
		return fmt.Errorf("fleet: encode epoch record: %w", err)
	}
	if err := d.j.Append(durable.Record{Type: recEpoch, Payload: rec}); err != nil {
		return err
	}
	c.crashSite(fmt.Sprintf("epoch:e%d:pre-sync", e))
	if err := d.j.Commit(); err != nil {
		return err
	}
	c.crashSite(fmt.Sprintf("epoch:e%d:post-commit", e))
	c.event(obs.KindJournalCommit, uint64(len(rec)), uint64(d.j.Size()))
	if (e+1)%c.cfg.snapshotEvery() == 0 || e == epochs-1 {
		if err := durable.WriteSnapshot(d.dir, e, payload, d.opt); err != nil {
			return err
		}
		c.event(obs.KindStateSnapshot, uint64(len(payload)), 0)
		c.crashSite(fmt.Sprintf("epoch:e%d:post-snapshot", e))
	}
	return nil
}

// durComplete seals a finished run with the final report digest — or,
// when resuming past a completed run, verifies the reconstructed report
// against it.
func (c *Controller) durComplete() error {
	if c.dur == nil {
		return nil
	}
	d := c.dur
	payload, err := json.Marshal(c.rep)
	if err != nil {
		return fmt.Errorf("fleet: encode report: %w", err)
	}
	digest := digestOf(payload)
	if d.completed {
		if digest != d.completeDig {
			return &ReplayDivergenceError{Epoch: -1, What: "final report digest", Got: digest, Want: d.completeDig}
		}
		return nil
	}
	c.crashSite("complete:pre-commit")
	rec, err := json.Marshal(completeRec{Digest: digest})
	if err != nil {
		return fmt.Errorf("fleet: encode completion record: %w", err)
	}
	if err := d.j.Append(durable.Record{Type: recComplete, Payload: rec}); err != nil {
		return err
	}
	if err := d.j.Commit(); err != nil {
		return err
	}
	c.crashSite("complete:post-commit")
	return nil
}

// RecoveryInfo reports what recovery did on the last Run. The zero
// value means no journal was configured or the run was fresh.
func (c *Controller) RecoveryInfo() RecoveryInfo {
	if c.dur == nil {
		return RecoveryInfo{SnapshotEpoch: -1}
	}
	return c.dur.info
}
