package fleet

import (
	"errors"
	"testing"

	"ehdl/internal/apps"
	"ehdl/internal/tenant"
)

func tenantSpecs(t *testing.T) []tenant.Spec {
	t.Helper()
	toy, ok := apps.ByName("toy")
	if !ok {
		t.Fatal("unknown app toy")
	}
	fw, ok := apps.ByName("firewall")
	if !ok {
		t.Fatal("unknown app firewall")
	}
	return []tenant.Spec{
		{Name: "toy#0", App: toy, Share: 0.5, VLAN: 100},
		{Name: "fw#1", App: fw, Share: 0.5, VLAN: 200},
	}
}

// TestFleetTenantMode: a fleet of multi-tenant devices serves the
// tenants' interleaved VLAN stream through the consistent-hash ring,
// folds every shard's per-tenant sub-reports into one fleet-level
// per-tenant view, and keeps the extended loss ledger exact.
func TestFleetTenantMode(t *testing.T) {
	c, err := New(Config{
		Devices:      3,
		Tenants:      tenantSpecs(t),
		Seed:         11,
		EpochPackets: 96,
		Verify:       false,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(6)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accounted() {
		t.Errorf("loss books don't balance: %+v", rep)
	}
	if rep.Delivered == 0 {
		t.Fatal("fleet delivered nothing")
	}
	// Per-tenant sub-reports from all shards fold by tenant name: the
	// fleet view has exactly one row per tenant, each row internally
	// consistent, and together they cover every classified arrival.
	if len(rep.Device.PerTenant) != 2 {
		t.Fatalf("fleet view has %d tenant rows, want 2: %+v", len(rep.Device.PerTenant), rep.Device.PerTenant)
	}
	var steered uint64
	for _, sl := range rep.Device.PerTenant {
		if !sl.Accounted() {
			t.Errorf("tenant %s fleet-folded ledger broken: %+v", sl.Name, sl)
		}
		if sl.Received == 0 {
			t.Errorf("tenant %s starved across the whole fleet: %+v", sl.Name, sl)
		}
		steered += sl.Steered
	}
	if steered+rep.QuarantinedLoss != rep.Generated {
		t.Errorf("classifier attribution leaks: %d steered + %d quarantined != %d generated",
			steered, rep.QuarantinedLoss, rep.Generated)
	}
	for _, d := range rep.PerDevice {
		if d.State != "healthy" || d.DeadTenants != 0 {
			t.Errorf("clean run damaged device %d: %+v", d.ID, d)
		}
	}
}

// TestFleetTenantModeValidation: single-pipeline machinery is rejected
// up front, and an unaffordable spec list fails New with the typed
// admission error from the tenant gate.
func TestFleetTenantModeValidation(t *testing.T) {
	specs := tenantSpecs(t)
	if _, err := New(Config{Tenants: specs, Verify: true}); err == nil {
		t.Error("Verify accepted in tenant mode")
	}
	if _, err := New(Config{Tenants: specs, Update: toyUpdate(t)}); err == nil {
		t.Error("fleet-wide Update accepted in tenant mode")
	}
	if _, err := New(Config{Tenants: specs, CorruptAt: map[int][]int{1: {0}}}); err == nil {
		t.Error("CorruptAt accepted in tenant mode")
	}
	_, err := New(Config{Tenants: specs, TenantBandPct: 9}) // below the Corundum shell's own footprint
	var ae *tenant.AdmissionError
	if !errors.As(err, &ae) {
		t.Errorf("unaffordable tenant list returned %v, want a tenant.AdmissionError", err)
	}
}
