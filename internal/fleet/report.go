package fleet

import "ehdl/internal/nic"

// Report is the cluster-level outcome of a fleet run. Loss is split by
// cause and exactly accounted: every generated packet lands in exactly
// one of Delivered, QueueLost, KilledLoss, MidServeLoss or
// UnroutableLoss, with chaos-injected overflow extras carried separately
// in ExtraInjected — Accounted() states the identity.
type Report struct {
	// Epochs and Devices describe the run shape; Seed makes the report
	// self-describing for replay.
	Epochs  int   `json:"epochs"`
	Devices int   `json:"devices"`
	Seed    int64 `json:"seed"`

	// Generated counts fleet-generated packets; ExtraInjected counts
	// chaos overflow-burst frames injected on top (recycled partition
	// packets, per-device).
	Generated     uint64 `json:"generated"`
	ExtraInjected uint64 `json:"extra_injected"`
	// Delivered counts packets retired by a device pipeline (including
	// forced-drop and aborted verdicts — they completed). QueueLost is
	// ingress back-pressure loss on serving devices. KilledLoss is
	// whole partitions lost to mid-epoch device kills. MidServeLoss is
	// the unserved remainder of a partition whose device died
	// unrecoverably mid-epoch. UnroutableLoss counts packets generated
	// while the ring had no live member.
	Delivered      uint64 `json:"delivered"`
	QueueLost      uint64 `json:"queue_lost"`
	KilledLoss     uint64 `json:"killed_loss"`
	MidServeLoss   uint64 `json:"mid_serve_loss"`
	UnroutableLoss uint64 `json:"unroutable_loss"`

	// Tenant-mode ledger lines (zero on single-pipeline fleets):
	// ThrottledLoss is overload shed by per-tenant token buckets,
	// QuarantinedLoss counts frames no tenant classifier rule claimed,
	// TenantDownLoss counts frames addressed to tenants that died in
	// place (contained failures that never removed the device from the
	// ring).
	ThrottledLoss   uint64 `json:"throttled_loss,omitempty"`
	QuarantinedLoss uint64 `json:"quarantined_loss,omitempty"`
	TenantDownLoss  uint64 `json:"tenant_down_loss,omitempty"`

	// VerifiedEpochs counts device-epochs diffed against the reference
	// mirror; VerdictDivergences counts divergences on devices that
	// were NOT deliberately corrupted (the chaos gate requires zero).
	VerifiedEpochs     uint64 `json:"verified_epochs"`
	VerdictDivergences uint64 `json:"verdict_divergences"`

	// Health and rebalance accounting.
	CorruptionsInjected int `json:"corruptions_injected"`
	Quarantines         int `json:"quarantines"`
	Drains              int `json:"drains"`
	Readmits            int `json:"readmits"`
	Kills               int `json:"kills"`
	DeadDevices         int `json:"dead_devices"`

	// Rollout outcome: "idle", "rolling", "done", "halted" or
	// "rolled-back"; empty when no update was configured. RolloutHalt
	// carries the halt cause.
	Rollout     string `json:"rollout,omitempty"`
	RolloutHalt string `json:"rollout_halt,omitempty"`

	// Device is the nic.Report sum over every served device-epoch
	// (Report.Add semantics: counters sum, rates sum, latency means are
	// packet-weighted).
	Device nic.Report `json:"device"`

	// PerDevice summarises each shard's fate.
	PerDevice []DeviceStatus `json:"per_device"`
}

// DeviceStatus is one shard's end-of-run summary.
type DeviceStatus struct {
	ID         int    `json:"id"`
	State      string `json:"state"`
	Updated    bool   `json:"updated"`
	Reverted   bool   `json:"reverted"`
	Drains     int    `json:"drains"`
	Received   uint64 `json:"received"`
	QueueLost  uint64 `json:"queue_lost"`
	DeathCause string `json:"death_cause,omitempty"`
	// DeadTenants counts tenant pipelines that died in place on this
	// shard (tenant mode only; the device itself kept serving).
	DeadTenants int `json:"dead_tenants,omitempty"`
}

// Accounted reports whether the loss books balance exactly:
//
//	Generated + ExtraInjected ==
//	    Delivered + QueueLost + ThrottledLoss + QuarantinedLoss +
//	    TenantDownLoss + KilledLoss + MidServeLoss + UnroutableLoss
//
// The chaos gate asserts this after every run — loss under chaos is
// bounded (a kill loses at most one partition) and every packet has
// exactly one ledger line. The three tenant-mode lines are zero on
// single-pipeline fleets, where the identity reduces to the classic
// five-way split.
func (r Report) Accounted() bool {
	return r.Generated+r.ExtraInjected ==
		r.Delivered+r.QueueLost+r.ThrottledLoss+r.QuarantinedLoss+
			r.TenantDownLoss+r.KilledLoss+r.MidServeLoss+r.UnroutableLoss
}
