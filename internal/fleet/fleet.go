// Package fleet is the cluster control plane of the repository: it runs
// N simulated NIC shells as in-process shards behind a cluster-level
// consistent-hash ring (flows partitioned one level above each device's
// own RSS dispatcher), drives rolling canary live-updates across them,
// and rebalances flows away from devices that are recovering, killed or
// silently corrupted.
//
// The controller is an epoch loop. Each epoch it generates one traffic
// slice, Toeplitz-hashes every flow onto the ring, serves each device's
// partition through nic.Shell.RunLoad, and then applies control
// decisions: verdict verification against a per-device reference
// interpreter, health-driven drains with jittered re-admission, and one
// step of the rollout state machine. Devices are served sequentially in
// id order and every random decision draws from streams forked off one
// master seed — a whole-fleet chaos run replays byte-identically.
package fleet

import (
	"fmt"
	"math/rand"

	"ehdl/internal/apps"
	"ehdl/internal/conformance"
	"ehdl/internal/core"
	"ehdl/internal/ebpf"
	"ehdl/internal/faults"
	"ehdl/internal/maps"
	"ehdl/internal/nic"
	"ehdl/internal/obs"
	"ehdl/internal/pktgen"
	"ehdl/internal/rss"
	"ehdl/internal/tenant"
	"ehdl/internal/vm"
)

// Fleet-level metric names.
const (
	MetricGenerated   = "fleet.generated_packets"
	MetricDelivered   = "fleet.delivered_packets"
	MetricLost        = "fleet.lost_packets"
	MetricDrains      = "fleet.drains"
	MetricReadmits    = "fleet.readmits"
	MetricKills       = "fleet.kills"
	MetricQuarantines = "fleet.quarantines"
	MetricDivergences = "fleet.verdict_divergences"
	MetricUpdates     = "fleet.rollout_updates"
	MetricReverts     = "fleet.rollout_reverts"
)

// Config parameterises a fleet run.
type Config struct {
	// Devices is the shard count. 0 means 4.
	Devices int
	// App is the workload every device serves. Required.
	App *apps.App
	// Opts is the compiler configuration (each device compiles its own
	// pipeline, so shards share no mutable state).
	Opts core.Options
	// Shell is the per-device shell template. Its Faults field is
	// overridden by the per-device Chaos fork; Sim.Trace and
	// Sim.Metrics are cleared (the fleet's Trace/Metrics below observe
	// the control plane, and the tracer is single-writer).
	Shell nic.ShellConfig
	// Seed is the master seed: traffic, fault forks, recovery jitter
	// and cool-down jitter all derive from it. 0 means 1.
	Seed int64
	// VNodes is the ring's virtual-node count per device. 0 means 16.
	VNodes int
	// EpochPackets is the traffic slice per epoch. 0 means 256.
	EpochPackets int
	// OfferedPps is the per-device offered rate. 0 means 50e6.
	OfferedPps float64

	// Verify mirrors every device with a reference interpreter and
	// diffs per-epoch verdict histograms and map state. Requires a
	// time-free app (the mirror pins the clock at zero). Epochs where a
	// device took hardware faults, dropped arrivals or absorbed an
	// overflow burst are skipped — verdict conformance is asserted only
	// where the hardware ran clean; faulted devices are handled by the
	// health machinery instead.
	Verify bool

	// Chaos, when enabled, is forked per device (Injector.Fork
	// semantics) so each shard runs its own deterministic hardware
	// fault campaign.
	Chaos faults.Config
	// KillAt schedules hard mid-epoch device deaths: epoch -> device
	// ids. The device's partition for that epoch is lost (bounded by
	// the partition size) and exactly accounted in Report.KilledLoss.
	KillAt map[int][]int
	// CorruptAt schedules silent map-state corruption: epoch -> device
	// ids. A corrupted device keeps serving; the verification mirror
	// catches the divergence and quarantines it.
	CorruptAt map[int][]int

	// Update, when non-nil, arms a rolling canary update across the
	// fleet.
	Update *UpdateConfig

	// Tenants, when non-empty, runs every device as a multi-tenant
	// tenant.Device instead of a single-pipeline shell: the same spec
	// list is admitted on each shard (priced against the per-device FPGA
	// budget — an admission rejection fails New with the typed
	// tenant.AdmissionError), traffic comes from the tenants' own
	// VLAN-tagged mux, and per-tenant sub-reports fold into the fleet
	// view through Report.Device. App/Opts/Shell are ignored (each spec
	// carries its own shell template); Verify, Update and CorruptAt are
	// single-pipeline machinery and are rejected in tenant mode.
	Tenants []tenant.Spec
	// TenantBandPct is the per-device admission ceiling, forwarded to
	// tenant.DeviceConfig.UtilisationBandPct. 0 means the tenant
	// package default.
	TenantBandPct float64

	// DrainRecoveries is the per-epoch recovery count that drains a
	// device from the ring. 0 means 1 (any recovery drains).
	DrainRecoveries uint64
	// CooldownEpochs is the base cool-down before a drained device is
	// re-admitted; a seeded jitter in [0, base) is added so
	// simultaneously-drained devices don't re-enter in lockstep. 0
	// means 2.
	CooldownEpochs int

	// JournalDir, when non-empty, makes the run crash-consistent: every
	// epoch commits a record to a write-ahead journal in this directory
	// before Run proceeds past it, and periodic full-state snapshots are
	// written beside it. A journal directory holding a previous run is
	// refused unless Resume is set.
	JournalDir string
	// Resume recovers the run journaled in JournalDir: the config
	// fingerprint is verified, the journaled epochs are re-executed
	// under digest verification (each must reproduce its committed
	// digest, and the newest valid snapshot must be reproduced
	// byte-for-byte), and live execution continues from the journal
	// tail.
	Resume bool
	// SnapshotEvery is the full-state snapshot cadence in epochs (a
	// snapshot is also written on the final epoch). 0 means 4.
	SnapshotEvery int

	// Trace receives KindRolloutPhase and KindRebalance events (the
	// Cycle field carries the epoch) plus, with a journal attached, the
	// KindJournalCommit/KindStateSnapshot/KindReplayEpoch stream.
	// Metrics accumulates the fleet.* and durable.* instruments. Both
	// optional.
	Trace   *obs.Tracer
	Metrics *obs.Registry
}

func (c Config) devices() int {
	if c.Devices <= 0 {
		return 4
	}
	return c.Devices
}

func (c Config) seed() int64 {
	if c.Seed == 0 {
		return 1
	}
	return c.Seed
}

func (c Config) epochPackets() int {
	if c.EpochPackets <= 0 {
		return 256
	}
	return c.EpochPackets
}

func (c Config) offeredPps() float64 {
	if c.OfferedPps <= 0 {
		return 50e6
	}
	return c.OfferedPps
}

func (c Config) drainRecoveries() uint64 {
	if c.DrainRecoveries == 0 {
		return 1
	}
	return c.DrainRecoveries
}

func (c Config) cooldownEpochs() int {
	if c.CooldownEpochs <= 0 {
		return 2
	}
	return c.CooldownEpochs
}

func (c Config) snapshotEvery() int {
	if c.SnapshotEvery <= 0 {
		return 4
	}
	return c.SnapshotEvery
}

// UpdateConfig parameterises the rolling canary update.
type UpdateConfig struct {
	// Prog is the new program. Required.
	Prog *ebpf.Program
	// Setup populates the new program's maps host-side before
	// migration.
	Setup func(*maps.Set) error
	// StartEpoch is the first epoch a device may update. 0 means 1.
	StartEpoch int
	// RolloutRate is the minimum number of epochs between device
	// updates — the update epoch plus at least one soak epoch whose
	// throughput must clear the benchreg floor before the next device
	// goes. 0 means 2; values below 2 are raised to 2.
	RolloutRate int
	// TolerancePct is the per-device throughput floor for the soak
	// gate, benchreg semantics. 0 means benchreg.DefaultTolerancePct.
	TolerancePct float64
	// CanaryPackets is the per-device canary requirement. 0 means 8.
	CanaryPackets int
	// ShadowChaos injects a fault campaign into the named device's
	// shadow pipeline (device id -> campaign) — the test hook that
	// makes a canary diverge on demand.
	ShadowChaos map[int]faults.Config
}

func (u *UpdateConfig) startEpoch() int {
	if u.StartEpoch <= 0 {
		return 1
	}
	return u.StartEpoch
}

func (u *UpdateConfig) rolloutRate() int {
	if u.RolloutRate < 2 {
		return 2
	}
	return u.RolloutRate
}

func (u *UpdateConfig) canaryPackets() int {
	if u.CanaryPackets <= 0 {
		return 8
	}
	return u.CanaryPackets
}

// devState is a device's position in the health state machine.
type devState int

const (
	stateHealthy devState = iota
	// stateCooling: drained from the ring after recoveries or a
	// watchdog trip, waiting out the jittered cool-down.
	stateCooling
	// stateDead: killed by chaos or lost to an unrecoverable error;
	// never re-admitted.
	stateDead
	// stateQuarantined: the verification mirror caught silent state
	// corruption; never re-admitted.
	stateQuarantined
)

var stateNames = [...]string{"healthy", "cooling", "dead", "quarantined"}

func (s devState) String() string { return stateNames[s] }

// device is one fleet shard: a single-pipeline shell (sh) or, in
// tenant mode, a multi-tenant device (td).
type device struct {
	id int
	sh *nic.Shell
	td *tenant.Device
	mi *mirror
	// prog is the program the device currently serves (flips with
	// committed updates and reverts); the mirror rebuilds against it.
	prog *ebpf.Program

	state         devState
	cooldownUntil int
	corrupted     bool
	deathCause    string

	updated  bool
	reverted bool
	// baselineMpps is the device's throughput on its last clean
	// pre-update epoch — the benchreg floor for the soak gate. lastMpps
	// and lastMppsEpoch record the most recent served epoch so the soak
	// gate knows it is looking at this epoch's number.
	baselineMpps  float64
	lastMpps      float64
	lastMppsEpoch int

	received uint64
	lost     uint64
	drains   int
}

// Controller owns the fleet.
type Controller struct {
	cfg     Config
	prog    *ebpf.Program
	devices []*device
	ring    *ring
	hasher  *rss.Hasher
	gen     *pktgen.Generator
	// next yields the next generated frame: the single app's generator,
	// or the tenants' VLAN-tagged mux in tenant mode.
	next func() []byte
	// rng draws fleet-level jitter (cool-down spread). Device-level
	// randomness lives in the per-device injector forks. rngDraws
	// counts the draws consumed — the stream position persisted into
	// every snapshot.
	rng      *rand.Rand
	rngDraws uint64
	epoch    int
	rep      Report
	rollout  *rolloutState

	// dur is the journal attachment (nil without Config.JournalDir);
	// replaying is true while a resumed run re-executes its journaled
	// prefix under digest verification.
	dur       *durState
	replaying bool
	// crashAt arms one named crash site (recovery-gate hook);
	// crashProbe, when non-nil, records every site the run passes.
	crashAt    string
	crashProbe map[string]int
}

// mix is the seed spreader for per-device derived seeds (splitmix
// finalizer, same construction the fault injector forks with).
func mix(v int64) int64 {
	z := uint64(v) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// New builds the fleet: per-device compiled pipelines, shells, fault
// forks and (under Verify) reference mirrors, all on one ring.
func New(cfg Config) (*Controller, error) {
	if len(cfg.Tenants) > 0 {
		return newTenantFleet(cfg)
	}
	if cfg.App == nil {
		return nil, fmt.Errorf("fleet: an app is required")
	}
	if cfg.Update != nil && cfg.Update.Prog == nil {
		return nil, fmt.Errorf("fleet: update config without a program")
	}
	prog, err := cfg.App.Program()
	if err != nil {
		return nil, fmt.Errorf("fleet: %s: %w", cfg.App.Name, err)
	}
	hasher, err := rss.NewHasher(nil)
	if err != nil {
		return nil, err
	}
	n := cfg.devices()
	c := &Controller{
		cfg:    cfg,
		prog:   prog,
		ring:   newRing(cfg.VNodes),
		hasher: hasher,
		rng:    rand.New(rand.NewSource(mix(cfg.seed()))),
	}
	traffic := cfg.App.Traffic
	traffic.Seed = mix(cfg.seed() + 1)
	c.gen = pktgen.NewGenerator(traffic)
	c.next = c.gen.Next

	for i := 0; i < n; i++ {
		pl, err := core.Compile(prog, cfg.Opts)
		if err != nil {
			return nil, fmt.Errorf("fleet: device %d compile: %w", i, err)
		}
		shCfg := cfg.Shell
		shCfg.Sim.Trace = nil
		shCfg.Sim.Metrics = nil
		if cfg.Chaos.Enabled() {
			shCfg.Faults = cfg.Chaos.Fork(int64(i) + 1)
		}
		if shCfg.Sim.RecoveryJitterSeed == 0 {
			shCfg.Sim.RecoveryJitterSeed = mix(cfg.seed() + 100 + int64(i))
		}
		sh, err := nic.New(pl, shCfg)
		if err != nil {
			return nil, fmt.Errorf("fleet: device %d: %w", i, err)
		}
		if err := cfg.App.Setup(sh.Maps()); err != nil {
			return nil, fmt.Errorf("fleet: device %d setup: %w", i, err)
		}
		d := &device{id: i, sh: sh, prog: prog}
		if cfg.Verify {
			mi, err := newMirror(prog, cfg.App.SetupHost)
			if err != nil {
				return nil, fmt.Errorf("fleet: device %d mirror: %w", i, err)
			}
			d.mi = mi
		}
		c.devices = append(c.devices, d)
		c.ring.Add(i)
	}
	if cfg.Update != nil {
		c.rollout = newRollout(cfg.Update, n)
	}
	c.rep.Devices = n
	c.rep.Seed = cfg.seed()
	return c, nil
}

// newTenantFleet builds the multi-tenant fleet: every shard is a
// tenant.Device admitting the same spec list against its own FPGA
// budget, fed from one VLAN-tagged tenant traffic mux through the same
// consistent-hash ring (tagged frames hash by their inner 5-tuple).
func newTenantFleet(cfg Config) (*Controller, error) {
	switch {
	case cfg.Verify:
		return nil, fmt.Errorf("fleet: tenant mode has no reference mirror; Verify must be off")
	case cfg.Update != nil:
		return nil, fmt.Errorf("fleet: rolling updates are per-tenant in tenant mode (tenant.Device.ScheduleUpdate), not fleet-wide")
	case len(cfg.CorruptAt) > 0:
		return nil, fmt.Errorf("fleet: CorruptAt targets a single-pipeline map set; unsupported in tenant mode")
	}
	hasher, err := rss.NewHasher(nil)
	if err != nil {
		return nil, err
	}
	n := cfg.devices()
	c := &Controller{
		cfg:    cfg,
		ring:   newRing(cfg.VNodes),
		hasher: hasher,
		rng:    rand.New(rand.NewSource(mix(cfg.seed()))),
	}
	mux := tenant.NewTrafficMux(cfg.Tenants, mix(cfg.seed()+1))
	c.next = mux.Next

	for i := 0; i < n; i++ {
		dcfg := tenant.DeviceConfig{
			UtilisationBandPct: cfg.TenantBandPct,
			EpochPackets:       cfg.epochPackets(),
			Seed:               mix(cfg.seed() + 200 + int64(i)),
		}
		if cfg.Chaos.Enabled() {
			dcfg.Chaos = cfg.Chaos.Fork(int64(i) + 1)
		}
		td := tenant.NewDevice(dcfg)
		for _, sp := range cfg.Tenants {
			if _, err := td.AdmitTenant(sp); err != nil {
				return nil, fmt.Errorf("fleet: device %d: %w", i, err)
			}
		}
		c.devices = append(c.devices, &device{id: i, td: td})
		c.ring.Add(i)
	}
	c.rep.Devices = n
	c.rep.Seed = cfg.seed()
	return c, nil
}

// count bumps a fleet metric (nil-registry safe).
func (c *Controller) count(name string, n uint64) {
	if c.cfg.Metrics != nil && n > 0 {
		c.cfg.Metrics.Counter(name).Add(n)
	}
}

// event emits one fleet trace event with the epoch as the cycle stamp.
// Rollout and rebalance transitions double as named crash sites: they
// are exactly the mid-epoch state mutations the recovery gate kills the
// controller inside.
func (c *Controller) event(kind obs.Kind, aux, aux2 uint64) {
	switch kind {
	case obs.KindRolloutPhase:
		c.crashSite("rollout:" + RolloutPhase(aux).String())
	case obs.KindRebalance:
		if aux2 == 1 {
			c.crashSite(fmt.Sprintf("rebalance:remove:dev%d", aux))
		} else {
			c.crashSite(fmt.Sprintf("rebalance:readmit:dev%d", aux))
		}
	}
	c.cfg.Trace.Emit(obs.Event{
		Cycle: uint64(c.epoch), Kind: kind, Seq: obs.NoSeq,
		Stage: obs.NoStage, Map: obs.NoMap, Aux: aux, Aux2: aux2,
	})
}

// Run drives the fleet for `epochs` epochs and returns the aggregate
// report. Device failures are absorbed into the report; the returned
// error covers only the controller's own invariants. With a journal
// attached (Config.JournalDir) each epoch's record is committed before
// the loop proceeds past it, and an armed crash site unwinds through
// here exactly like a process kill — journal left as-is, torn tail and
// all, for the next Resume.
func (c *Controller) Run(epochs int) (rep Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			sc, ok := r.(simCrash)
			if !ok {
				panic(r)
			}
			rep = c.rep
			err = fmt.Errorf("%w at site %q", errSimulatedCrash, string(sc))
		}
	}()
	if err := c.durOpen(epochs); err != nil {
		return c.rep, err
	}
	if c.dur != nil {
		defer c.dur.j.Close()
	}
	for e := 0; e < epochs; e++ {
		c.epoch = e
		c.runEpoch()
		if err := c.durEpoch(e, epochs); err != nil {
			return c.rep, err
		}
	}
	c.finalize()
	if err := c.durComplete(); err != nil {
		return c.rep, err
	}
	return c.rep, nil
}

// runEpoch executes one epoch: re-admissions, rollout scheduling,
// traffic partitioning, per-device serving and rollout evaluation.
func (c *Controller) runEpoch() {
	c.rep.Epochs = c.epoch + 1
	c.readmitCooled()
	if c.rollout != nil {
		c.rollout.schedule(c)
	}
	batches := c.partition()
	for _, d := range c.devices {
		c.chaosStrike(d, len(batches[d.id]))
		if d.state != stateHealthy && d.state != stateCooling {
			continue
		}
		c.serve(d, batches[d.id])
	}
	if c.rollout != nil {
		c.rollout.evaluate(c)
	}
}

// chaosStrike applies this epoch's scheduled kill/corrupt events to one
// device, after its partition was assigned — a kill therefore loses
// exactly that partition, the bounded in-flight loss the report
// accounts under KilledLoss.
func (c *Controller) chaosStrike(d *device, batchLen int) {
	for _, id := range c.cfg.KillAt[c.epoch] {
		if id == d.id && d.state != stateDead {
			c.kill(d, "chaos kill", uint64(batchLen))
		}
	}
	for _, id := range c.cfg.CorruptAt[c.epoch] {
		if id == d.id && d.state == stateHealthy && !d.corrupted {
			if corruptMaps(d.sh.Maps()) {
				d.corrupted = true
				c.rep.CorruptionsInjected++
			}
		}
	}
}

// kill marks a device dead, removes it from the ring and charges the
// partition it was about to serve to KilledLoss.
func (c *Controller) kill(d *device, cause string, loss uint64) {
	d.state = stateDead
	d.deathCause = cause
	c.ring.Remove(d.id)
	c.rep.Kills++
	c.rep.KilledLoss += loss
	c.count(MetricKills, 1)
	c.event(obs.KindRebalance, uint64(d.id), 1)
}

// quarantine permanently drains a device whose state diverged from the
// reference — the silent-corruption path.
func (c *Controller) quarantine(d *device) {
	d.state = stateQuarantined
	d.deathCause = "verdict divergence (quarantined)"
	c.ring.Remove(d.id)
	c.rep.Quarantines++
	c.count(MetricQuarantines, 1)
	c.event(obs.KindRebalance, uint64(d.id), 1)
}

// drain removes a recovering device from the ring for a jittered
// cool-down. RunLoad drains the pipeline before returning, so a drain
// decided at the epoch boundary strands zero in-flight packets — the
// only loss already sits in the queue-drop books.
func (c *Controller) drain(d *device) {
	base := c.cfg.cooldownEpochs()
	d.state = stateCooling
	d.cooldownUntil = c.epoch + 1 + base + c.rng.Intn(base)
	c.rngDraws++
	d.drains++
	c.ring.Remove(d.id)
	c.rep.Drains++
	c.count(MetricDrains, 1)
	c.event(obs.KindRebalance, uint64(d.id), 1)
}

// readmitCooled returns cooled-down devices to the ring.
func (c *Controller) readmitCooled() {
	for _, d := range c.devices {
		if d.state == stateCooling && c.epoch >= d.cooldownUntil {
			d.state = stateHealthy
			c.ring.Add(d.id)
			c.rep.Readmits++
			c.count(MetricReadmits, 1)
			c.event(obs.KindRebalance, uint64(d.id), 0)
		}
	}
}

// partition hashes one epoch's traffic slice onto the ring. Flows with
// no live home (empty ring) are charged to UnroutableLoss.
func (c *Controller) partition() [][][]byte {
	batches := make([][][]byte, len(c.devices))
	n := c.cfg.epochPackets()
	for i := 0; i < n; i++ {
		pkt := c.next()
		hash, ok := c.hasher.HashPacket(pkt)
		if !ok {
			hash = 0
		}
		dev, live := c.ring.Lookup(hash)
		if !live {
			c.rep.UnroutableLoss++
			continue
		}
		batches[dev] = append(batches[dev], pkt)
	}
	c.rep.Generated += uint64(n)
	c.count(MetricGenerated, uint64(n))
	return batches
}

// serve drives one device's partition through its shell, folds the
// accounting, verifies against the mirror and applies the health rule.
func (c *Controller) serve(d *device, batch [][]byte) {
	count := len(batch)
	if count == 0 {
		return
	}
	// Overflow-burst faults make the shell pull more than count frames;
	// extras recycle the partition (modulo) and every pull gets a fresh
	// copy so in-place frame damage never reaches the mirror's
	// pristine batch.
	i := 0
	next := func() []byte {
		pkt := batch[i%count]
		i++
		return append([]byte(nil), pkt...)
	}
	var rep nic.Report
	var err error
	if d.td != nil {
		// Tenant mode: the device's own classifier/policer owns the
		// batch; tenant-local failures are contained inside Serve and
		// come back as TenantDownLoss, not as an error.
		rep, err = d.td.Serve(batch, c.cfg.offeredPps())
	} else {
		rep, err = d.sh.RunLoad(next, count, c.cfg.offeredPps())
	}
	if err != nil {
		// Unrecoverable device death mid-serve (recovery budget
		// exhausted): retired packets stay delivered, the rest of the
		// partition is the bounded in-flight loss.
		delivered := rep.Received
		if delivered > uint64(count) {
			c.rep.ExtraInjected += delivered - uint64(count)
		} else {
			c.rep.MidServeLoss += uint64(count) - delivered
		}
		c.rep.Delivered += delivered
		c.rep.Device.Add(rep)
		d.received += delivered
		c.kill(d, err.Error(), 0)
		return
	}
	c.rep.Delivered += rep.Received
	c.rep.QueueLost += rep.Lost
	c.rep.ThrottledLoss += rep.Throttled
	c.rep.QuarantinedLoss += rep.Quarantined
	c.rep.TenantDownLoss += rep.TenantDownLoss
	c.rep.ExtraInjected += rep.Sent - uint64(count)
	c.rep.Device.Add(rep)
	c.count(MetricDelivered, rep.Received)
	c.count(MetricLost, rep.Lost)
	d.received += rep.Received
	d.lost += rep.Lost

	updateEpoch := c.rollout != nil && c.rollout.pending == d.id
	if updateEpoch {
		c.rollout.lastRep = rep
	}

	switch {
	case updateEpoch:
		// The live-update machinery ran its own canary diff this epoch;
		// the mirror is stale by one batch either way (commit or
		// rollback), so resync it from the device's host maps.
		if rep.UpdatesCompleted > 0 {
			d.prog = c.rollout.servingProg(c, d)
		}
		c.resyncMirror(d)
	case c.verifiable(d, rep, count):
		c.verify(d, batch, rep)
	default:
		// The epoch took hardware faults, damage or drops, so it is not
		// comparable to the fault-free reference — and a silent map
		// upset from it would otherwise poison every later clean diff.
		// Re-base the mirror on the device's current state: conformance
		// is asserted over clean windows, faulted windows are owned by
		// the protection/recovery machinery.
		c.resyncMirror(d)
	}

	d.lastMpps = rep.AchievedMpps
	d.lastMppsEpoch = c.epoch
	if d.state == stateHealthy && !d.updated && !updateEpoch {
		// Update epochs carry migration and cutover overhead; only
		// clean epochs set the soak-gate baseline.
		d.baselineMpps = rep.AchievedMpps
	}
	if rep.Recoveries >= c.cfg.drainRecoveries() || rep.WatchdogTrips > 0 {
		if d.state == stateHealthy {
			c.drain(d)
		}
	}
}

// resyncMirror re-bases a device's mirror on its serving program and
// current host map state (no-op without a mirror; a rebuild failure
// disables verification for the device rather than mis-diffing it).
func (c *Controller) resyncMirror(d *device) {
	if d.mi == nil {
		return
	}
	if err := d.mi.rebuild(d.prog, d.sh.Maps()); err != nil {
		d.mi = nil
	}
}

// verifiable gates the mirror diff: only an epoch the hardware served
// clean — no injected faults, no damaged frames, no recovery aborts, no
// queue drops, no overflow extras — is comparable to the fault-free
// reference.
func (c *Controller) verifiable(d *device, rep nic.Report, count int) bool {
	return d.mi != nil &&
		rep.FaultsInjected == 0 && rep.MalformedSent == 0 &&
		rep.RecoveryAborted == 0 && rep.Lost == 0 &&
		rep.Sent == uint64(count)
}

// verify replays the batch on the device's reference mirror and diffs
// the verdict histogram and the full map state. A divergence on a
// chaos-corrupted device is the detection working — the device is
// quarantined; on any other device it is counted, and the chaos gate
// requires that count to be zero.
func (c *Controller) verify(d *device, batch [][]byte, rep nic.Report) {
	actions, err := d.mi.run(batch)
	diverged := err != nil
	if !diverged {
		for a, n := range rep.Actions {
			if n > 0 && actions[a] != n {
				diverged = true
			}
		}
		for a, n := range actions {
			if n > 0 && rep.Actions[a] != n {
				diverged = true
			}
		}
	}
	if !diverged {
		if err := conformance.CompareMaps(d.mi.env.Maps, d.sh.Maps()); err != nil {
			diverged = true
		}
	}
	c.rep.VerifiedEpochs++
	if !diverged {
		return
	}
	if d.corrupted {
		c.quarantine(d)
		return
	}
	c.rep.VerdictDivergences++
	c.count(MetricDivergences, 1)
}

// finalize computes the end-of-run summary.
func (c *Controller) finalize() {
	for _, d := range c.devices {
		st := DeviceStatus{
			ID: d.id, State: d.state.String(), Updated: d.updated,
			Reverted: d.reverted, Drains: d.drains,
			Received: d.received, QueueLost: d.lost,
			DeathCause: d.deathCause,
		}
		if d.td != nil {
			for _, tn := range d.td.Tenants() {
				if tn.Dead() {
					st.DeadTenants++
				}
			}
		}
		c.rep.PerDevice = append(c.rep.PerDevice, st)
		if d.state == stateDead || d.state == stateQuarantined {
			c.rep.DeadDevices++
		}
	}
	if c.rollout != nil {
		c.rep.Rollout = c.rollout.outcome()
		c.rep.RolloutHalt = c.rollout.haltReason
	}
}

// Report returns the report accumulated so far.
func (c *Controller) Report() Report { return c.rep }

// corruptMaps flips the first byte of the first entry of the first
// non-empty map — the silent single-device corruption the differential
// mirror is there to catch.
func corruptMaps(set *maps.Set) bool {
	for id := 0; id < set.Len(); id++ {
		m, ok := set.ByID(id)
		if !ok {
			continue
		}
		var key, val []byte
		m.Iterate(func(k, v []byte) bool {
			key = append([]byte(nil), k...)
			val = append([]byte(nil), v...)
			return false
		})
		if key == nil {
			continue
		}
		val[0] ^= 0xff
		if err := m.Update(key, val, maps.UpdateAny); err != nil {
			continue
		}
		return true
	}
	return false
}

// mirror is a device's reference interpreter: the same program over the
// same flow partition, clock pinned at zero, diffed each clean epoch.
type mirror struct {
	prog *ebpf.Program
	env  *vm.Env
	m    *vm.Machine
}

func newMirror(prog *ebpf.Program, setup func(*maps.Set) error) (*mirror, error) {
	env, err := vm.NewEnv(prog)
	if err != nil {
		return nil, err
	}
	env.Now = func() uint64 { return 0 }
	if setup != nil {
		if err := setup(env.Maps); err != nil {
			return nil, err
		}
	}
	m, err := vm.New(prog, env)
	if err != nil {
		return nil, err
	}
	return &mirror{prog: prog, env: env, m: m}, nil
}

// run executes one batch and returns the verdict histogram.
func (mi *mirror) run(batch [][]byte) (map[ebpf.XDPAction]uint64, error) {
	actions := map[ebpf.XDPAction]uint64{}
	for _, data := range batch {
		res, err := mi.m.Run(vm.NewPacket(append([]byte(nil), data...)))
		if err != nil {
			return nil, err
		}
		actions[res.Action]++
	}
	return actions, nil
}

// rebuild re-bases the mirror on prog with map state copied from the
// device — used after an update epoch, where the live-update canary
// owned the diff and the mirror sat out one batch.
func (mi *mirror) rebuild(prog *ebpf.Program, from *maps.Set) error {
	fresh, err := newMirror(prog, nil)
	if err != nil {
		return err
	}
	if err := fresh.env.Maps.Restore(from.Snapshot()); err != nil {
		return err
	}
	*mi = *fresh
	return nil
}
