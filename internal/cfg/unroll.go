package cfg

import (
	"fmt"

	"ehdl/internal/ebpf"
	"ehdl/internal/vm"
)

// MaxUnrollTrips bounds loop unrolling; a loop with more iterations is
// rejected as effectively unbounded for a hardware pipeline.
const MaxUnrollTrips = 4096

// Unroll rewrites every bounded counted loop in prog into straight-line
// copies of its body, returning a program whose CFG is acyclic. The
// input is unchanged. Programs without back edges are returned as a
// copy.
//
// The supported shape is the one the eBPF verifier's bounded-loop rule
// produces: a back edge "if rC <op> bound goto header" whose counter rC
// is initialised to a constant before the header and changed only by
// constant additions inside the body. Early exits out of the body are
// preserved.
func Unroll(prog *ebpf.Program) (*ebpf.Program, error) {
	ip := toIndexed(prog)
	for rounds := 0; ; rounds++ {
		if rounds > 64 {
			return nil, fmt.Errorf("cfg: loop unrolling did not converge (nested or irreducible loops)")
		}
		cur, err := ip.emit(prog)
		if err != nil {
			return nil, err
		}
		g, err := Build(cur)
		if err != nil {
			return nil, err
		}
		edges := g.BackEdges()
		if len(edges) == 0 {
			return cur, nil
		}
		// Unroll the innermost (last in program order) loop first.
		edge := edges[len(edges)-1]
		for _, e := range edges {
			if g.Blocks[e.From].End > g.Blocks[edge.From].End {
				edge = e
			}
		}
		if err := ip.unrollOne(cur, g, edge); err != nil {
			return nil, err
		}
	}
}

// indexed is a branch-target-resolved instruction stream: targets are
// instruction indices instead of slot deltas, which makes splicing
// copies trivial.
type indexed struct {
	ins    []ebpf.Instruction
	target []int // -1 when not a branch
}

func toIndexed(prog *ebpf.Program) *indexed {
	ip := &indexed{
		ins:    append([]ebpf.Instruction(nil), prog.Instructions...),
		target: make([]int, len(prog.Instructions)),
	}
	for i, ins := range prog.Instructions {
		ip.target[i] = -1
		if ins.IsBranch() {
			t, _ := prog.BranchTarget(i)
			ip.target[i] = t
		}
	}
	return ip
}

// emit converts back to slot-relative offsets.
func (ip *indexed) emit(orig *ebpf.Program) (*ebpf.Program, error) {
	out := &ebpf.Program{
		Name:         orig.Name,
		Maps:         orig.Maps,
		Instructions: append([]ebpf.Instruction(nil), ip.ins...),
	}
	offs := out.SlotOffsets()
	for i := range out.Instructions {
		if ip.target[i] < 0 {
			continue
		}
		delta := offs[ip.target[i]] - (offs[i] + out.Instructions[i].Slots())
		if delta < -(1<<15) || delta >= 1<<15 {
			return nil, fmt.Errorf("cfg: unrolled branch at %d out of 16-bit range", i)
		}
		out.Instructions[i].Off = int16(delta)
	}
	return out, nil
}

// unrollOne expands the loop closed by edge into tripCount copies.
func (ip *indexed) unrollOne(prog *ebpf.Program, g *Graph, edge BackEdge) error {
	headStart := g.Blocks[edge.To].Start
	tailEnd := g.Blocks[edge.From].End // one past the back-edge branch
	branchIdx := tailEnd - 1
	branch := ip.ins[branchIdx]
	if !branch.IsBranch() || ip.target[branchIdx] != headStart {
		return fmt.Errorf("cfg: back edge of blocks %d->%d is not a trailing branch", edge.From, edge.To)
	}

	// The loop must be a contiguous region only entered at the header.
	for i := range ip.ins {
		t := ip.target[i]
		if t < 0 {
			continue
		}
		inRegion := i >= headStart && i < tailEnd
		targetsInside := t > headStart && t < tailEnd
		if !inRegion && targetsInside {
			return fmt.Errorf("cfg: loop at [%d,%d) has a side entry from %d", headStart, tailEnd, i)
		}
		if inRegion && t == headStart && i != branchIdx {
			return fmt.Errorf("cfg: loop at [%d,%d) has multiple back edges", headStart, tailEnd)
		}
	}

	trips, err := countTrips(ip, headStart, tailEnd, branchIdx)
	if err != nil {
		return err
	}

	// Build the unrolled region: trips copies of [headStart, tailEnd).
	bodyLen := tailEnd - headStart
	growth := (trips - 1) * bodyLen

	// Remap targets in one pass over a freshly assembled stream.
	newIns := make([]ebpf.Instruction, 0, len(ip.ins)+growth)
	newTgt := make([]int, 0, len(ip.ins)+growth)

	mapOutside := func(t int) int {
		if t < 0 {
			return t
		}
		if t >= tailEnd {
			return t + growth
		}
		return t // before the loop, or the header itself
	}

	// Prefix.
	for i := 0; i < headStart; i++ {
		newIns = append(newIns, ip.ins[i])
		newTgt = append(newTgt, mapOutside(ip.target[i]))
	}
	// Copies.
	for c := 0; c < trips; c++ {
		base := headStart + c*bodyLen
		for i := headStart; i < tailEnd; i++ {
			ins := ip.ins[i]
			t := ip.target[i]
			switch {
			case i == branchIdx:
				if c < trips-1 {
					// Continue into the next copy.
					t = base + bodyLen
				} else {
					// Loop exhausted: fall through (a branch to the next
					// instruction is a no-op either way).
					t = base + bodyLen
				}
			case t >= headStart && t < tailEnd:
				t = base + (t - headStart) // intra-body forward branch
			default:
				t = mapOutside(t)
			}
			newIns = append(newIns, ins)
			newTgt = append(newTgt, t)
		}
	}
	// Suffix.
	for i := tailEnd; i < len(ip.ins); i++ {
		newIns = append(newIns, ip.ins[i])
		newTgt = append(newTgt, mapOutside(ip.target[i]))
	}

	ip.ins, ip.target = newIns, newTgt
	return nil
}

// countTrips determines the exact iteration count of a counted loop.
func countTrips(ip *indexed, headStart, tailEnd, branchIdx int) (int, error) {
	branch := ip.ins[branchIdx]
	if branch.JumpOp() == ebpf.JumpAlways {
		return 0, fmt.Errorf("cfg: unconditional back edge at %d is an unbounded loop", branchIdx)
	}
	if branch.Source() != ebpf.SourceK {
		return 0, fmt.Errorf("cfg: back-edge condition at %d must compare against a constant", branchIdx)
	}
	counter := branch.Dst
	bound := uint64(int64(branch.Imm))

	// Total constant delta applied to the counter per iteration.
	var delta int64
	for i := headStart; i < tailEnd; i++ {
		ins := ip.ins[i]
		defsCounter := false
		for _, d := range ins.Defs() {
			if d == counter {
				defsCounter = true
			}
		}
		if !defsCounter {
			continue
		}
		if !ins.Class().IsALU() || ins.Source() != ebpf.SourceK {
			return 0, fmt.Errorf("cfg: loop counter r%d is not updated by a constant at %d", counter, i)
		}
		switch ins.ALUOp() {
		case ebpf.ALUAdd:
			delta += int64(ins.Imm)
		case ebpf.ALUSub:
			delta -= int64(ins.Imm)
		default:
			return 0, fmt.Errorf("cfg: loop counter r%d mutated by %s at %d", counter, ins.ALUOp(), i)
		}
	}
	if delta == 0 {
		return 0, fmt.Errorf("cfg: loop counter r%d never advances", counter)
	}

	// Initial value: nearest constant mov to the counter before the header.
	init, found := int64(0), false
	for i := headStart - 1; i >= 0; i-- {
		ins := ip.ins[i]
		for _, d := range ins.Defs() {
			if d != counter {
				continue
			}
			if ins.Class().IsALU() && ins.ALUOp() == ebpf.ALUMov && ins.Source() == ebpf.SourceK {
				init, found = int64(ins.Imm), true
			} else if ins.IsLoadImm64() && !ins.IsLoadOfMapFD() {
				init, found = ins.Imm64, true
			} else {
				return 0, fmt.Errorf("cfg: loop counter r%d has a non-constant initialisation at %d", counter, i)
			}
		}
		if found {
			break
		}
	}
	if !found {
		return 0, fmt.Errorf("cfg: loop counter r%d has no constant initialisation", counter)
	}

	// Simulate iterations.
	v := uint64(init)
	is32 := branch.Class() == ebpf.ClassJMP32
	trips := 0
	for {
		trips++
		if trips > MaxUnrollTrips {
			return 0, fmt.Errorf("cfg: loop exceeds %d iterations", MaxUnrollTrips)
		}
		v = uint64(int64(v) + delta)
		taken, err := vm.Compare(branch.JumpOp(), cmpVal(v, is32), cmpVal(bound, is32), is32)
		if err != nil {
			return 0, err
		}
		if !taken {
			return trips, nil
		}
	}
}

func cmpVal(v uint64, is32 bool) uint64 {
	if is32 {
		return uint64(uint32(v))
	}
	return v
}
