package cfg

import (
	"fmt"
	"math/rand"
	"testing"

	"ehdl/internal/asm"
	"ehdl/internal/ebpf"
	"ehdl/internal/vm"
)

func mustAssemble(t *testing.T, src string) *ebpf.Program {
	t.Helper()
	prog, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

const diamondSrc = `
r0 = 0
if r1 == 1 goto then
r0 = 10
goto join
then:
r0 = 20
join:
r0 += 1
exit
`

func TestBuildDiamond(t *testing.T) {
	g, err := Build(mustAssemble(t, diamondSrc))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(g.Blocks))
	}
	entry := g.Blocks[0]
	if len(entry.Succs) != 2 {
		t.Fatalf("entry successors = %v", entry.Succs)
	}
	join := g.Blocks[g.BlockOf(6)]
	if len(join.Preds) != 2 {
		t.Fatalf("join predecessors = %v", join.Preds)
	}
	if !g.IsAcyclic() {
		t.Error("diamond reported cyclic")
	}
	rpo := g.ReversePostOrder()
	if rpo[0] != 0 {
		t.Errorf("rpo starts at %d", rpo[0])
	}
	if len(rpo) != 4 {
		t.Errorf("rpo visits %d blocks", len(rpo))
	}
}

func TestDominatorsDiamond(t *testing.T) {
	g, err := Build(mustAssemble(t, diamondSrc))
	if err != nil {
		t.Fatal(err)
	}
	dom := g.Dominators()
	joinID := g.BlockOf(6)
	thenID := g.BlockOf(4)
	if !dom[joinID][0] {
		t.Error("entry does not dominate join")
	}
	if dom[joinID][thenID] {
		t.Error("then-branch wrongly dominates join")
	}
	for b := range g.Blocks {
		if !dom[b][b] {
			t.Errorf("block %d does not dominate itself", b)
		}
	}
}

func TestTopologicalBlocks(t *testing.T) {
	g, err := Build(mustAssemble(t, diamondSrc))
	if err != nil {
		t.Fatal(err)
	}
	order, err := g.TopologicalBlocks()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int)
	for i, b := range order {
		pos[b] = i
	}
	for _, b := range order {
		for _, s := range g.Blocks[b].Succs {
			if pos[s] <= pos[b] {
				t.Errorf("edge %d->%d violates topological order %v", b, s, order)
			}
		}
	}
}

const loopSrc = `
r0 = 0
r6 = 0
loop:
r0 += 2
r6 += 1
if r6 != 5 goto loop
exit
`

func TestBackEdges(t *testing.T) {
	g, err := Build(mustAssemble(t, loopSrc))
	if err != nil {
		t.Fatal(err)
	}
	edges := g.BackEdges()
	if len(edges) != 1 {
		t.Fatalf("back edges = %v, want one", edges)
	}
	if g.IsAcyclic() {
		t.Error("loop reported acyclic")
	}
	if _, err := g.TopologicalBlocks(); err == nil {
		t.Error("TopologicalBlocks accepted a cyclic graph")
	}
}

// runProgram executes a program on a 64-byte packet and returns R0.
func runProgram(t *testing.T, prog *ebpf.Program) uint64 {
	t.Helper()
	env, err := vm.NewEnv(prog)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(vm.NewPacket(make([]byte, 64)))
	if err != nil {
		t.Fatal(err)
	}
	return uint64(res.Action)
}

func TestUnrollCountedLoop(t *testing.T) {
	prog := mustAssemble(t, loopSrc)
	want := runProgram(t, prog)

	unrolled, err := Unroll(prog)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(unrolled)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsAcyclic() {
		t.Fatal("unrolled program still has back edges")
	}
	if got := runProgram(t, unrolled); got != want {
		t.Errorf("unrolled result = %d, want %d", got, want)
	}
	if len(unrolled.Instructions) <= len(prog.Instructions) {
		t.Error("unrolling did not expand the program")
	}
}

func TestUnrollDowncountLoop(t *testing.T) {
	prog := mustAssemble(t, `
r0 = 0
r6 = 8
loop:
r0 += r6
r6 -= 2
if r6 s> 0 goto loop
exit
`)
	want := runProgram(t, prog) // 8+6+4+2 = 20
	if want != 20 {
		t.Fatalf("reference run = %d, want 20", want)
	}
	unrolled, err := Unroll(prog)
	if err != nil {
		t.Fatal(err)
	}
	if got := runProgram(t, unrolled); got != want {
		t.Errorf("unrolled result = %d, want %d", got, want)
	}
}

func TestUnrollPreservesEarlyExit(t *testing.T) {
	prog := mustAssemble(t, `
r0 = 0
r6 = 0
r7 = 3
loop:
r0 += 1
if r0 == r7 goto out    ; data-dependent early exit
r6 += 1
if r6 != 10 goto loop
out:
exit
`)
	want := runProgram(t, prog) // exits when r0 reaches 3
	if want != 3 {
		t.Fatalf("reference run = %d, want 3", want)
	}
	unrolled, err := Unroll(prog)
	if err != nil {
		t.Fatal(err)
	}
	if got := runProgram(t, unrolled); got != want {
		t.Errorf("unrolled result = %d, want %d", got, want)
	}
}

func TestUnrollNoLoopIsIdentity(t *testing.T) {
	prog := mustAssemble(t, diamondSrc)
	out, err := Unroll(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Instructions) != len(prog.Instructions) {
		t.Error("loop-free program changed size under Unroll")
	}
}

func TestUnrollRejectsUnbounded(t *testing.T) {
	cases := []string{
		// Unconditional back edge.
		"r0 = 0\nloop:\nr0 += 1\ngoto loop\nexit",
		// Counter never advances.
		"r0 = 0\nr6 = 0\nloop:\nr0 += 1\nif r6 != 5 goto loop\nexit",
		// Counter from a register (no constant init).
		"r0 = 0\nr6 = r1\nloop:\nr6 += 1\nif r6 != 5 goto loop\nexit",
		// Register-bound condition.
		"r0 = 0\nr6 = 0\nloop:\nr6 += 1\nif r6 != r1 goto loop\nexit",
	}
	for _, src := range cases {
		prog := mustAssemble(t, src)
		if _, err := Unroll(prog); err == nil {
			t.Errorf("Unroll accepted unbounded loop:\n%s", src)
		}
	}
}

func TestUnrollNestedLoops(t *testing.T) {
	prog := mustAssemble(t, `
r0 = 0
r6 = 0
outer:
r7 = 0
inner:
r0 += 1
r7 += 1
if r7 != 3 goto inner
r6 += 1
if r6 != 4 goto outer
exit
`)
	want := runProgram(t, prog) // 3*4 = 12
	if want != 12 {
		t.Fatalf("reference run = %d, want 12", want)
	}
	unrolled, err := Unroll(prog)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := Build(unrolled)
	if !g.IsAcyclic() {
		t.Fatal("nested unroll left back edges")
	}
	if got := runProgram(t, unrolled); got != want {
		t.Errorf("unrolled result = %d, want %d", got, want)
	}
}

// TestPropertyDominatorsAgainstPathRemoval cross-checks the iterative
// dominator computation against the definition: a dominates b iff
// removing a disconnects the entry from b.
func TestPropertyDominatorsAgainstPathRemoval(t *testing.T) {
	randomBranchy := func(seed int64) *ebpf.Program {
		r := rand.New(rand.NewSource(seed))
		b := asm.NewBuilder("dom")
		n := 3 + r.Intn(5)
		for i := 0; i < n; i++ {
			b.Emit(ebpf.Mov64Imm(ebpf.R0, int32(i)))
			if r.Intn(2) == 0 {
				b.JumpTo(ebpf.JumpEq, ebpf.R1, int32(r.Intn(4)), fmt.Sprintf("l%d", r.Intn(n-i)+i))
			}
		}
		for i := 0; i < n; i++ {
			b.Label(fmt.Sprintf("l%d", i))
			b.Emit(ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R0, 1))
		}
		b.Emit(ebpf.Exit())
		prog, err := b.Program()
		if err != nil {
			t.Fatal(err)
		}
		return prog
	}

	reachableWithout := func(g *Graph, removed int) []bool {
		seen := make([]bool, len(g.Blocks))
		if removed == 0 {
			return seen
		}
		stack := []int{0}
		seen[0] = true
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, s := range g.Blocks[b].Succs {
				if s == removed || seen[s] {
					continue
				}
				seen[s] = true
				stack = append(stack, s)
			}
		}
		return seen
	}

	for seed := int64(0); seed < 40; seed++ {
		prog := randomBranchy(seed)
		g, err := Build(prog)
		if err != nil {
			t.Fatal(err)
		}
		dom := g.Dominators()
		reach := g.Reachable()
		for a := range g.Blocks {
			without := reachableWithout(g, a)
			for b := range g.Blocks {
				if !reach[b] || !reach[a] {
					continue
				}
				want := a == b || !without[b]
				if dom[b][a] != want {
					t.Fatalf("seed %d: dom[%d][%d] = %v, path-removal says %v", seed, b, a, dom[b][a], want)
				}
			}
		}
	}
}
