// Package cfg builds and analyses the control-flow graph of an eBPF
// program: basic blocks, reverse post-order, dominators and back-edge
// detection.
//
// The eHDL compiler requires a strictly forward-feeding pipeline
// (Section 3.5 of the paper); backward branches only occur in bounded
// loops, which Unroll rewrites into straight-line copies so that the
// remaining graph is acyclic.
package cfg

import (
	"fmt"
	"sort"

	"ehdl/internal/ebpf"
)

// Block is a maximal straight-line instruction sequence.
type Block struct {
	ID    int
	Start int // first instruction index
	End   int // one past the last instruction index
	Succs []int
	Preds []int
}

// Len returns the number of instructions in the block.
func (b *Block) Len() int { return b.End - b.Start }

// Graph is the control-flow graph of a program.
type Graph struct {
	Prog    *ebpf.Program
	Blocks  []Block
	blockOf []int // instruction index -> block ID
}

// Build constructs the CFG. The program must validate.
func Build(prog *ebpf.Program) (*Graph, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	n := len(prog.Instructions)

	// Block leaders: entry, branch targets, and branch/exit successors.
	leader := make([]bool, n)
	leader[0] = true
	for i, ins := range prog.Instructions {
		if ins.IsBranch() {
			t, ok := prog.BranchTarget(i)
			if !ok {
				return nil, fmt.Errorf("cfg: unresolvable branch at %d", i)
			}
			leader[t] = true
			if i+1 < n {
				leader[i+1] = true
			}
		}
		if ins.IsExit() && i+1 < n {
			leader[i+1] = true
		}
	}

	g := &Graph{Prog: prog, blockOf: make([]int, n)}
	for i := 0; i < n; i++ {
		if leader[i] {
			g.Blocks = append(g.Blocks, Block{ID: len(g.Blocks), Start: i})
		}
		g.blockOf[i] = len(g.Blocks) - 1
	}
	for i := range g.Blocks {
		if i+1 < len(g.Blocks) {
			g.Blocks[i].End = g.Blocks[i+1].Start
		} else {
			g.Blocks[i].End = n
		}
	}

	// Edges.
	for i := range g.Blocks {
		b := &g.Blocks[i]
		last := prog.Instructions[b.End-1]
		switch {
		case last.IsExit():
			// no successors
		case last.IsBranch():
			t, _ := prog.BranchTarget(b.End - 1)
			b.Succs = append(b.Succs, g.blockOf[t])
			if last.IsConditional() && b.End < n {
				b.Succs = appendUnique(b.Succs, g.blockOf[b.End])
			}
		default:
			if b.End < n {
				b.Succs = append(b.Succs, g.blockOf[b.End])
			} else {
				return nil, fmt.Errorf("cfg: block %d falls off the program end", b.ID)
			}
		}
	}
	for i := range g.Blocks {
		for _, s := range g.Blocks[i].Succs {
			g.Blocks[s].Preds = appendUnique(g.Blocks[s].Preds, i)
		}
	}
	return g, nil
}

func appendUnique(s []int, v int) []int {
	for _, have := range s {
		if have == v {
			return s
		}
	}
	return append(s, v)
}

// BlockOf returns the ID of the block containing instruction index i.
func (g *Graph) BlockOf(i int) int { return g.blockOf[i] }

// ReversePostOrder returns block IDs in reverse post-order from the
// entry block. Unreachable blocks are omitted.
func (g *Graph) ReversePostOrder() []int {
	visited := make([]bool, len(g.Blocks))
	var post []int
	var dfs func(int)
	dfs = func(b int) {
		visited[b] = true
		for _, s := range g.Blocks[b].Succs {
			if !visited[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(0)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Reachable returns the set of blocks reachable from the entry.
func (g *Graph) Reachable() []bool {
	visited := make([]bool, len(g.Blocks))
	stack := []int{0}
	visited[0] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Blocks[b].Succs {
			if !visited[s] {
				visited[s] = true
				stack = append(stack, s)
			}
		}
	}
	return visited
}

// BackEdge is a control-flow edge whose target does not come after its
// source in the DFS, i.e. a loop edge.
type BackEdge struct {
	From int // source block ID
	To   int // target block ID (the loop header)
}

// BackEdges finds loop edges with a DFS colouring.
func (g *Graph) BackEdges() []BackEdge {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	colour := make([]int, len(g.Blocks))
	var edges []BackEdge
	var dfs func(int)
	dfs = func(b int) {
		colour[b] = grey
		for _, s := range g.Blocks[b].Succs {
			switch colour[s] {
			case white:
				dfs(s)
			case grey:
				edges = append(edges, BackEdge{From: b, To: s})
			}
		}
		colour[b] = black
	}
	dfs(0)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	return edges
}

// IsAcyclic reports whether the graph has no loops, the property the
// pipeline generator requires after unrolling.
func (g *Graph) IsAcyclic() bool { return len(g.BackEdges()) == 0 }

// Dominators computes the immediate-dominator-free full dominator sets
// with the classic iterative data-flow algorithm. dom[b] reports, for
// each block a, whether a dominates b.
func (g *Graph) Dominators() [][]bool {
	n := len(g.Blocks)
	dom := make([][]bool, n)
	for i := range dom {
		dom[i] = make([]bool, n)
		for j := range dom[i] {
			dom[i][j] = true // all blocks, refined below
		}
	}
	for j := range dom[0] {
		dom[0][j] = j == 0
	}
	rpo := g.ReversePostOrder()
	changed := true
	for changed {
		changed = false
		for _, b := range rpo {
			if b == 0 {
				continue
			}
			next := make([]bool, n)
			first := true
			for _, p := range g.Blocks[b].Preds {
				if first {
					copy(next, dom[p])
					first = false
					continue
				}
				for j := range next {
					next[j] = next[j] && dom[p][j]
				}
			}
			if first {
				// Unreachable block: dominated only by itself.
				next = make([]bool, n)
			}
			next[b] = true
			for j := range next {
				if next[j] != dom[b][j] {
					dom[b] = next
					changed = true
					break
				}
			}
		}
	}
	return dom
}

// TopologicalBlocks returns the reachable blocks in a topological order
// of the acyclic CFG, preferring original program order among ready
// blocks so the pipeline layout matches the bytecode layout. It fails if
// the graph still has loops.
func (g *Graph) TopologicalBlocks() ([]int, error) {
	if !g.IsAcyclic() {
		return nil, fmt.Errorf("cfg: graph has back edges; unroll loops first")
	}
	reach := g.Reachable()
	indeg := make([]int, len(g.Blocks))
	for i := range g.Blocks {
		if !reach[i] {
			continue
		}
		for _, s := range g.Blocks[i].Succs {
			indeg[s]++
		}
	}
	var order []int
	ready := []int{0}
	for len(ready) > 0 {
		sort.Ints(ready)
		b := ready[0]
		ready = ready[1:]
		order = append(order, b)
		for _, s := range g.Blocks[b].Succs {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	return order, nil
}
