package nic

import (
	"testing"

	"ehdl/internal/apps"
	"ehdl/internal/conformance"
	"ehdl/internal/core"
	"ehdl/internal/hwsim"
	"ehdl/internal/liveupdate"
	"ehdl/internal/obs"
	"ehdl/internal/pktgen"
	"ehdl/internal/protect"
)

// TestFastPathReportMatchesInterpreter drives every app's seeded
// traffic at line rate through an interpreted shell and a compiled one
// and demands the externally visible ledger — sent, received, lost,
// per-verdict histogram — and the final map state agree exactly. The
// two engines may disagree on cycle counts (the fast path models the
// hazard-free skeleton), never on what happened to the packets.
func TestFastPathReportMatchesInterpreter(t *testing.T) {
	const count = 2000
	for _, app := range apps.All() {
		slow := newShell(t, app, core.Options{}, ShellConfig{})
		fast := newShell(t, app, core.Options{}, ShellConfig{FastPath: true})
		if !fast.FastPath() {
			t.Fatalf("%s: FastPath()=false on an eligible config", app.Name)
		}
		rate := slow.LineRateMpps(64) * 1e6
		run := func(sh *Shell) Report {
			gen := pktgen.NewGenerator(app.Traffic)
			rep, err := sh.RunLoad(gen.Next, count, rate)
			if err != nil {
				t.Fatalf("%s: %v", app.Name, err)
			}
			return rep
		}
		sr, fr := run(slow), run(fast)
		if sr.Sent != fr.Sent || sr.Received != fr.Received || sr.Lost != fr.Lost {
			t.Errorf("%s: ledger sent/received/lost %d/%d/%d (interp) vs %d/%d/%d (fast)",
				app.Name, sr.Sent, sr.Received, sr.Lost, fr.Sent, fr.Received, fr.Lost)
		}
		if sr.MalformedDropped != fr.MalformedDropped {
			t.Errorf("%s: malformed %d vs %d", app.Name, sr.MalformedDropped, fr.MalformedDropped)
		}
		if len(sr.Actions) != len(fr.Actions) {
			t.Errorf("%s: verdict histogram %v vs %v", app.Name, sr.Actions, fr.Actions)
		}
		for act, n := range sr.Actions {
			if fr.Actions[act] != n {
				t.Errorf("%s: %v count %d (interp) vs %d (fast)", app.Name, act, n, fr.Actions[act])
			}
		}
		if err := conformance.CompareMaps(slow.Maps(), fast.Maps()); err != nil {
			t.Errorf("%s: %v", app.Name, err)
		}
	}
}

// TestFastPathFallbackMatrix: every feature the compiled engine does
// not implement silently keeps the interpreter in charge — FastPath()
// reports the truth and the run still completes. This is the
// executable form of the fallback matrix in DESIGN.md.
func TestFastPathFallbackMatrix(t *testing.T) {
	cases := map[string]hwsim.Config{
		"protection":   {Protection: protect.LevelParity},
		"watchdog":     {WatchdogCycles: 64},
		"stall-policy": {Policy: hwsim.PolicyStall},
		"strict-carry": {StrictCarryCheck: true},
		"metrics":      {Metrics: obs.NewRegistry()},
	}
	app := apps.Toy()
	for name, sim := range cases {
		sh := newShell(t, app, core.Options{}, ShellConfig{FastPath: true, Sim: sim})
		if sh.FastPath() {
			t.Errorf("%s: FastPath()=true on an ineligible config", name)
		}
		gen := pktgen.NewGenerator(app.Traffic)
		rep, err := sh.RunLoad(gen.Next, 300, 50e6)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Received == 0 {
			t.Errorf("%s: interpreter fallback processed no packets", name)
		}
	}
}

// TestFastPathLiveUpdateFallsBack: on a single queue the live-update
// machinery runs only in the interpreter, so arming an update demotes
// a compiled shell for the whole run and the cutover retires the
// compiled program permanently (it was specialized against the old
// pipeline). The update itself must still commit hitlessly.
func TestFastPathLiveUpdateFallsBack(t *testing.T) {
	const count = 1200
	app := apps.Toy()
	sh := newShell(t, app, core.Options{}, ShellConfig{FastPath: true})
	if !sh.FastPath() {
		t.Fatal("FastPath()=false before arming the update")
	}
	prog, err := app.Program()
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.ScheduleUpdate(count/2, liveupdate.Config{Prog: prog, Setup: app.SetupHost}); err != nil {
		t.Fatal(err)
	}
	if sh.FastPath() {
		t.Error("FastPath()=true with an update armed")
	}
	gen := pktgen.NewGenerator(app.Traffic)
	rep, err := sh.RunLoad(gen.Next, count, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UpdatesCompleted != 1 {
		t.Fatalf("update completed %d, want 1", rep.UpdatesCompleted)
	}
	if sh.Fast() != nil {
		t.Error("compiled program survived the pipeline swap")
	}
	if rep.Received != rep.Sent {
		t.Errorf("received %d of %d across the update", rep.Received, rep.Sent)
	}
}

// TestFastPathMultiQueue: the FastPath switch reaches the RSS fleet —
// every replica runs compiled — and the multi-queue ledger matches the
// interpreted fleet on the same traffic.
func TestFastPathMultiQueue(t *testing.T) {
	const count = 1600
	app := apps.Toy()
	run := func(fastpath bool) (*Shell, Report) {
		sh := newShell(t, app, core.Options{}, ShellConfig{
			Queues: 4, FastPath: fastpath,
			Sim: hwsim.Config{InputQueuePackets: 64},
		})
		gen := pktgen.NewGenerator(app.Traffic)
		rep, err := sh.RunLoad(gen.Next, count, 100e6)
		if err != nil {
			t.Fatal(err)
		}
		return sh, rep
	}
	fastSh, fr := run(true)
	slowSh, sr := run(false)
	if !fastSh.FastPath() {
		t.Fatal("FastPath()=false on an eligible multi-queue config")
	}
	if slowSh.FastPath() {
		t.Fatal("FastPath()=true without the switch")
	}
	if fr.QueueCount != 4 {
		t.Fatalf("queue count %d, want 4", fr.QueueCount)
	}
	if fr.Sent != sr.Sent || fr.Received != sr.Received || fr.Lost != sr.Lost {
		t.Errorf("ledger sent/received/lost %d/%d/%d (fast) vs %d/%d/%d (interp)",
			fr.Sent, fr.Received, fr.Lost, sr.Sent, sr.Received, sr.Lost)
	}
	for act, n := range sr.Actions {
		if fr.Actions[act] != n {
			t.Errorf("%v count %d (interp) vs %d (fast)", act, n, fr.Actions[act])
		}
	}
	if err := conformance.CompareMaps(slowSh.Maps(), fastSh.Maps()); err != nil {
		t.Error(err)
	}
}
