package nic

import (
	"testing"

	"ehdl/internal/apps"
	"ehdl/internal/core"
	"ehdl/internal/ebpf"
	"ehdl/internal/hwsim"
	"ehdl/internal/pktgen"
)

func newShell(t *testing.T, app *apps.App, opts core.Options, cfg ShellConfig) *Shell {
	t.Helper()
	prog, err := app.Program()
	if err != nil {
		t.Fatal(err)
	}
	pl, err := core.Compile(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := New(pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Setup(sh.Maps()); err != nil {
		t.Fatal(err)
	}
	return sh
}

func TestLineRateForwarding(t *testing.T) {
	// Figure 9a: every eHDL pipeline forwards 148 Mpps of 64-byte
	// packets without loss.
	for _, app := range apps.All() {
		sh := newShell(t, app, core.Options{}, ShellConfig{})
		gen := pktgen.NewGenerator(app.Traffic)
		line := sh.LineRateMpps(64)
		rep, err := sh.RunLoad(gen.Next, 3000, line*1e6)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		if rep.Lost != 0 {
			t.Errorf("%s: lost %d packets at line rate", app.Name, rep.Lost)
		}
		if rep.Received != rep.Sent {
			t.Errorf("%s: received %d of %d", app.Name, rep.Received, rep.Sent)
		}
		if rep.AchievedMpps < line*0.95 {
			t.Errorf("%s: achieved %.1f Mpps at %.1f offered", app.Name, rep.AchievedMpps, line)
		}
	}
}

func TestLatencyAboutAMicrosecond(t *testing.T) {
	// Figure 9b: end-to-end forwarding latency around 1 us for every
	// use case, with the per-app variation following pipeline depth.
	for _, app := range apps.All() {
		sh := newShell(t, app, core.Options{}, ShellConfig{})
		gen := pktgen.NewGenerator(app.Traffic)
		rep, err := sh.RunLoad(gen.Next, 500, 50e6)
		if err != nil {
			t.Fatal(err)
		}
		if rep.AvgLatencyNs < 500 || rep.AvgLatencyNs > 1500 {
			t.Errorf("%s: latency %.0f ns, want about a microsecond", app.Name, rep.AvgLatencyNs)
		}
	}
}

func TestDeeperPipelineHigherLatency(t *testing.T) {
	latency := func(app *apps.App) float64 {
		sh := newShell(t, app, core.Options{}, ShellConfig{})
		gen := pktgen.NewGenerator(app.Traffic)
		rep, err := sh.RunLoad(gen.Next, 200, 10e6)
		if err != nil {
			t.Fatal(err)
		}
		return rep.AvgLatencyNs
	}
	// The tunnel pipeline (deepest, framing NOPs for adjust_head) must
	// exceed the toy pipeline's latency.
	if lt, lToy := latency(apps.Tunnel()), latency(apps.Toy()); lt <= lToy {
		t.Errorf("tunnel latency %.0f ns <= toy %.0f ns", lt, lToy)
	}
}

func TestOverloadDropsAtInput(t *testing.T) {
	// Offering more than one packet per clock must overflow the ingress
	// queue, not corrupt results.
	sh := newShell(t, apps.Toy(), core.Options{}, ShellConfig{Sim: hwsim.Config{InputQueuePackets: 32}})
	gen := pktgen.NewGenerator(apps.Toy().Traffic)
	rep, err := sh.RunLoad(gen.Next, 3000, 400e6) // 400 Mpps > 250 Mpps capacity
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lost == 0 {
		t.Error("overload produced no queue drops")
	}
	if rep.Received+rep.Lost != rep.Sent {
		t.Errorf("accounting broken: %d + %d != %d", rep.Received, rep.Lost, rep.Sent)
	}
}

func TestActionsReported(t *testing.T) {
	sh := newShell(t, apps.Toy(), core.Options{}, ShellConfig{})
	gen := pktgen.NewGenerator(apps.Toy().Traffic)
	rep, err := sh.RunLoad(gen.Next, 100, 10e6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Actions[ebpf.XDPTx] != 100 {
		t.Errorf("actions = %v, want 100 XDP_TX", rep.Actions)
	}
}

func TestSaturationRamp(t *testing.T) {
	sh := newShell(t, apps.Toy(), core.Options{}, ShellConfig{Sim: hwsim.Config{InputQueuePackets: 64}})
	gen := pktgen.NewGenerator(apps.Toy().Traffic)
	sat, err := sh.SaturationMpps(gen.Next, 2000, 100, 50, 400)
	if err != nil {
		t.Fatal(err)
	}
	// The toy pipeline takes one packet per cycle: saturation at the
	// 250 MHz clock (the paper's 250 Mpps headroom claim).
	if sat < 200 || sat > 260 {
		t.Errorf("saturation = %.0f Mpps, want ~250", sat)
	}
}

func TestLargePacketsLowerPacketRate(t *testing.T) {
	sh := newShell(t, apps.Toy(), core.Options{}, ShellConfig{Sim: hwsim.Config{InputQueuePackets: 64}})
	big := func() []byte {
		return pktgen.Build(pktgen.PacketSpec{Flow: pktgen.Flow{Proto: ebpf.IPProtoUDP}, TotalLen: 512})
	}
	// 512B packets occupy 8 frames: capacity ~31 Mpps, line rate ~23.5.
	line := sh.LineRateMpps(512)
	rep, err := sh.RunLoad(big, 1000, line*1e6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lost != 0 {
		t.Errorf("lost %d large packets at their line rate", rep.Lost)
	}
}
