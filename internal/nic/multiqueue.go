package nic

import (
	"context"
	"fmt"

	"ehdl/internal/core"
	"ehdl/internal/ebpf"
	"ehdl/internal/faults"
	"ehdl/internal/hwsim"
	"ehdl/internal/liveupdate"
	"ehdl/internal/obs"
	"ehdl/internal/rss"
)

// multiAgg accumulates per-queue statistics across engine sessions (a
// live-update swap splits one RunLoad into sessions on the old and new
// replica sets).
type multiAgg struct {
	perQueue []rss.QueueStats
	// cycles sums session wall-clocks (the max replica cycle count of
	// each session): sessions are sequential in simulated time even
	// though replicas within one session run concurrently.
	cycles    uint64
	conflicts uint64
	fallbacks uint64
}

func (a *multiAgg) add(rs rss.RunStats) {
	if a.perQueue == nil {
		a.perQueue = make([]rss.QueueStats, len(rs.PerQueue))
	}
	for i, qs := range rs.PerQueue {
		a.perQueue[i].Steered += qs.Steered
		a.perQueue[i].Cycles += qs.Cycles
		a.perQueue[i].Stats = a.perQueue[i].Stats.Add(qs.Stats)
	}
	a.cycles += rs.MaxCycles
	a.conflicts += rs.MergeConflicts
	a.fallbacks += rs.FallbackSteers
}

// runLoadMulti is RunLoad for the multi-queue shell: the caller's
// goroutine generates and classifies arrivals, one worker goroutine per
// replica paces and executes them against the shared simulated clock,
// and the collector folds completions into the report. Simulated
// results are deterministic regardless of host scheduling because every
// packet's entry cycle is stamped by the dispatcher before it crosses a
// channel.
func (sh *Shell) runLoadMulti(next func() []byte, count int, offeredPps float64) (Report, error) {
	ctx, endTask := obs.Task(context.Background(), "nic.RunLoadMulti")
	defer endTask()
	clock := sh.cfg.clockHz()
	cyclesPerPacket := clock / offeredPps

	var (
		rep      Report
		agg      multiAgg
		sent     int
		extra    int
		bytesIn  uint64
		bytesOut uint64
		// latSum accumulates latency in cycles; the average converts
		// once at the end so the result does not depend on the order
		// queues interleave (float addition is not associative).
		latSum uint64
		latMax uint64
	)
	rep.Actions = map[ebpf.XDPAction]uint64{}
	rep.QueueCount = sh.engine.Queues()

	var startFaults faults.Counters
	if sh.inj != nil {
		startFaults = sh.inj.Counters()
		next = sh.inj.WrapTraffic(next)
	}

	// dispatch runs on the collector goroutine. It only touches
	// collector-owned accumulators until Drain's join publishes them.
	dispatch := func(c rss.Completion) {
		rep.Received++
		rep.Actions[c.Res.Action]++
		bytesOut += uint64(c.PktLen)
		lat := c.Res.LatencyCycles + uint64(sh.cfg.fifoCycles())
		latSum += lat
		if lat > latMax {
			latMax = lat
		}
	}

	if err := sh.engine.Start(cyclesPerPacket, dispatch); err != nil {
		return rep, err
	}

	endRegion := obs.Region(ctx, "drive")
	for sent < count {
		// A scheduled live update triggers once enough traffic was
		// offered: quiesce-drain every replica, swap them atomically,
		// and resume — or roll back with the old replicas untouched.
		if sh.pending != nil && sent >= sh.pending.after {
			p := sh.pending
			sh.pending = nil
			rep.UpdatesAttempted++
			held, err := sh.swapEngine(&rep, &agg, p.cfg, cyclesPerPacket, dispatch)
			if err != nil {
				if _, ok := err.(*liveupdate.UpdateError); !ok {
					// Not an update failure: the engine itself broke.
					endRegion()
					return rep, err
				}
			}
			// Arrivals that landed during the cutover drain were held
			// and release first, in order — they are simply the next
			// packets of the generated sequence.
			for i := 0; i < held && sent < count; i++ {
				pkt := next()
				bytesIn += uint64(len(pkt))
				sh.engine.Offer(pkt)
				sent++
				rep.HeldPackets++
			}
			continue
		}
		pkt := next()
		bytesIn += uint64(len(pkt))
		sh.engine.Offer(pkt)
		sent++
		if sh.inj != nil && sent < count && sh.inj.Roll(faults.QueueOverflow) {
			// Ingress overflow burst: a burst of frames lands on the
			// next arrival's cycle on top of the paced load, spread
			// across queues by their flow hashes.
			for i := 0; i < sh.inj.BurstLen(); i++ {
				b := next()
				bytesIn += uint64(len(b))
				sh.engine.OfferBurst(b)
				extra++
			}
			sh.inj.Note(faults.QueueOverflow)
		}
	}
	endRegion()

	rs, err := sh.engine.Drain()
	agg.add(rs)
	if err != nil {
		return rep, err
	}

	rep.Sent = uint64(sent + extra)
	rep.Cycles = agg.cycles
	rep.MergeConflicts = agg.conflicts
	rep.SteerFallbacks = agg.fallbacks
	for q, qs := range agg.perQueue {
		qr := QueueReport{
			Queue:    q,
			Steered:  qs.Steered,
			Received: qs.Stats.Completed,
			Lost:     qs.Stats.QueueDrops,
			Flushes:  qs.Stats.Flushes,
			Cycles:   qs.Cycles,
		}
		if qs.Cycles > 0 {
			qr.AchievedMpps = float64(qr.Received) / (float64(qs.Cycles) / clock) / 1e6
		}
		rep.PerQueue = append(rep.PerQueue, qr)
		rep.Lost += qs.Stats.QueueDrops
		rep.Flushes += qs.Stats.Flushes
		rep.FaultsInjected += qs.Stats.FaultsInjected
		rep.MalformedDropped += qs.Stats.MalformedDropped
		rep.QueueOverflows += qs.Stats.QueueOverflows
		rep.WatchdogTrips += qs.Stats.WatchdogTrips
		rep.CorrectedWords += qs.Stats.CorrectedWords
		rep.UncorrectableWords += qs.Stats.UncorrectableWords
		rep.ScrubPasses += qs.Stats.ScrubPasses
		rep.CheckpointsTaken += qs.Stats.CheckpointsTaken
		rep.Recoveries += qs.Stats.Recoveries
		rep.RecoveryAborted += qs.Stats.RecoveryAborted
		rep.RecoveryBackoffCycles += qs.Stats.RecoveryBackoffCycles
	}
	if sh.inj != nil {
		endFaults := sh.inj.Counters()
		rep.MalformedSent = endFaults.ByClass[faults.MalformedTraffic] - startFaults.ByClass[faults.MalformedTraffic]
		rep.OverflowBursts = endFaults.ByClass[faults.QueueOverflow] - startFaults.ByClass[faults.QueueOverflow]
	}

	// Replicas run concurrently in hardware: the run's wall-clock is
	// the slowest session chain, so throughput uses agg.cycles (the
	// session maxima), not the per-queue sum.
	seconds := float64(agg.cycles) / clock
	if seconds > 0 {
		rep.AchievedMpps = float64(rep.Received) / seconds / 1e6
		rep.AchievedGbps = float64(bytesOut+20*rep.Received) * 8 / seconds / 1e9
		rep.FlushesPerS = float64(rep.Flushes) / seconds
	}
	rep.OfferedMpps = offeredPps / 1e6
	if sent > 0 {
		rep.OfferedGbps = float64(bytesIn+20*rep.Sent) * 8 / (float64(sent) * cyclesPerPacket / clock) / 1e9
	}
	if rep.Received > 0 {
		rep.AvgLatencyNs = float64(latSum) / float64(rep.Received) / clock * 1e9
	}
	rep.MaxLatencyNs = float64(latMax) / clock * 1e9
	if reg := sh.cfg.Sim.Metrics; reg != nil {
		if h, ok := reg.HistogramByName(hwsim.MetricStageOccupancy); ok {
			rep.MeanStageOccupancy = h.Mean()
		}
		if h, ok := reg.HistogramByName(hwsim.MetricCyclesPerPacket); ok {
			rep.P99LatencyCycles = h.Quantile(0.99)
		}
		if h, ok := reg.HistogramByName(hwsim.MetricFlushPenalty); ok {
			rep.FlushPenaltyMean = h.Mean()
		}
		rep.MapPortOps, _ = reg.CounterValue(hwsim.MetricMapPortOps)
		rep.BackpressureCycles, _ = reg.CounterValue(hwsim.MetricBackpressure)
	}
	return rep, nil
}

// swapEngine performs the multi-queue live update: drain every replica
// of the serving engine (the quiesce barrier), gate the new program
// through the schema check, build the new replica set, migrate the
// merged old state into every new bank, and swap — all replicas cut
// over atomically, there is never a mixed fleet. Any failure rolls back
// with the old replicas' state untouched and the old engine resumed.
//
// Returns the number of arrivals that would have landed during the
// cutover drain window; the caller releases them into the serving
// engine first, preserving arrival order.
func (sh *Shell) swapEngine(rep *Report, agg *multiAgg, ucfg liveupdate.Config, cyclesPerPacket float64, dispatch func(rss.Completion)) (held int, err error) {
	old := sh.engine

	// Quiesce: stop offering, run every replica dry. After Drain the
	// banked maps serve their merged views — the migration source.
	preCycles := agg.cycles
	rs, derr := old.Drain()
	agg.add(rs)
	if derr != nil {
		return 0, derr
	}
	cutover := agg.cycles - preCycles
	rep.CutoverTicks += cutover
	if cyclesPerPacket > 0 {
		held = int(float64(cutover) / cyclesPerPacket)
	}

	rollback := func(stage liveupdate.Stage, cause error) (int, error) {
		ue := &liveupdate.UpdateError{Stage: stage, Err: cause}
		rep.UpdatesRolledBack++
		rep.UpdateStage = liveupdate.StageRolledBack.String()
		rep.UpdateFailure = ue.Error()
		// The old replicas still hold their state; resume serving.
		if serr := old.Start(cyclesPerPacket, dispatch); serr != nil {
			return 0, serr
		}
		sh.engine = old
		return held, ue
	}

	oldProg := old.Pipeline().Prog
	if cerr := liveupdate.CheckPrograms(oldProg, ucfg.Prog); cerr != nil {
		return rollback(liveupdate.StageShadow, cerr)
	}
	newPl, cerr := core.Compile(ucfg.Prog, ucfg.Opts)
	if cerr != nil {
		return rollback(liveupdate.StageShadow, cerr)
	}
	eng, cerr := rss.NewEngine(newPl, rss.Config{
		Queues:   sh.cfg.Queues,
		Batch:    sh.cfg.Batch,
		Sim:      sh.cfg.Sim,
		FastPath: sh.cfg.FastPath,
	})
	if cerr != nil {
		return rollback(liveupdate.StageShadow, cerr)
	}
	if ucfg.Setup != nil {
		if serr := ucfg.Setup(eng.HostMaps()); serr != nil {
			return rollback(liveupdate.StageShadow, serr)
		}
	}

	// Migration: the merged old state broadcasts into every new bank
	// (pre-seal writes fan out), so each replica starts from the same
	// view a single-queue migration would have produced. Live state
	// overwrites colliding setup entries, like the bulk copy of the
	// single-queue controller.
	migrated, merr := sh.migrateMerged(old, eng, ucfg.Prog)
	if merr != nil {
		return rollback(liveupdate.StageMigrate, merr)
	}
	rep.MigratedEntries += migrated
	rep.MigrationTicks += migrated // one entry per tick, the bulk-copy cost model

	if sh.pinned != nil {
		eng.SetClock(sh.pinnedNow)
	}
	if serr := eng.Start(cyclesPerPacket, dispatch); serr != nil {
		return rollback(liveupdate.StageCutover, serr)
	}
	sh.engine = eng
	rep.UpdatesCompleted++
	rep.UpdateStage = liveupdate.StageDone.String()
	return held, nil
}

// migrateMerged copies every name-matched, schema-compatible map from
// the drained old engine's merged view into the new engine's host maps.
func (sh *Shell) migrateMerged(old, new *rss.Engine, newProg *ebpf.Program) (uint64, error) {
	newNames := map[string]bool{}
	for _, spec := range newProg.Maps {
		newNames[spec.Name] = true
	}
	var migrated uint64
	var merr error
	for _, spec := range old.Pipeline().Prog.Maps {
		if !newNames[spec.Name] {
			continue // dropped with its state
		}
		src, ok := old.HostMaps().ByName(spec.Name)
		if !ok {
			continue
		}
		dst, ok := new.HostMaps().ByName(spec.Name)
		if !ok {
			continue
		}
		src.Iterate(func(k, v []byte) bool {
			if err := dst.Update(k, v, 0); err != nil {
				merr = fmt.Errorf("nic: migrate %q: %w", spec.Name, err)
				return false
			}
			migrated++
			return true
		})
		if merr != nil {
			return migrated, merr
		}
	}
	return migrated, nil
}
