package nic

import "ehdl/internal/ebpf"

// Add folds another device's Report into this one, treating the two as
// parallel shards of one cluster: pure counters sum, rates sum (devices
// add capacity side by side), latency averages are weighted by the
// packets that experienced them, and worst-case figures take the max.
// The fleet controller uses it to build one cluster Report from N
// per-device runs, so the aggregation rules live here — next to the
// counter definitions — rather than ad hoc at the call site.
//
// Aggregation rules that are not plain sums:
//
//   - AvgLatencyNs is Received-weighted; MaxLatencyNs and
//     P99LatencyCycles take the max across devices.
//   - MeanStageOccupancy is Cycles-weighted, FlushPenaltyMean is
//     Flushes-weighted.
//   - UpdateStage and UpdateFailure keep the first non-empty value, so
//     the earliest failing device's cause survives aggregation.
//   - QueueCount sums (total replicas across the fleet) and PerQueue
//     entries append in device order; Queue indices are per-device and
//     repeat across shards.
func (r *Report) Add(o Report) {
	// Weighted means first, while both sides' weights are still intact.
	if tot := r.Received + o.Received; tot > 0 {
		r.AvgLatencyNs = (r.AvgLatencyNs*float64(r.Received) +
			o.AvgLatencyNs*float64(o.Received)) / float64(tot)
	}
	if tot := r.Cycles + o.Cycles; tot > 0 {
		r.MeanStageOccupancy = (r.MeanStageOccupancy*float64(r.Cycles) +
			o.MeanStageOccupancy*float64(o.Cycles)) / float64(tot)
	}
	if tot := r.Flushes + o.Flushes; tot > 0 {
		r.FlushPenaltyMean = (r.FlushPenaltyMean*float64(r.Flushes) +
			o.FlushPenaltyMean*float64(o.Flushes)) / float64(tot)
	}
	if o.MaxLatencyNs > r.MaxLatencyNs {
		r.MaxLatencyNs = o.MaxLatencyNs
	}
	if o.P99LatencyCycles > r.P99LatencyCycles {
		r.P99LatencyCycles = o.P99LatencyCycles
	}

	// Parallel shards add capacity: rates sum.
	r.OfferedMpps += o.OfferedMpps
	r.AchievedMpps += o.AchievedMpps
	r.OfferedGbps += o.OfferedGbps
	r.AchievedGbps += o.AchievedGbps
	r.FlushesPerS += o.FlushesPerS

	// Traffic accounting.
	r.Sent += o.Sent
	r.Received += o.Received
	r.Lost += o.Lost
	r.Flushes += o.Flushes
	r.Cycles += o.Cycles
	if o.Actions != nil {
		if r.Actions == nil {
			r.Actions = map[ebpf.XDPAction]uint64{}
		}
		for a, n := range o.Actions {
			r.Actions[a] += n
		}
	}

	// Fault-campaign counters.
	r.FaultsInjected += o.FaultsInjected
	r.MalformedSent += o.MalformedSent
	r.MalformedDropped += o.MalformedDropped
	r.QueueOverflows += o.QueueOverflows
	r.OverflowBursts += o.OverflowBursts
	r.WatchdogTrips += o.WatchdogTrips

	// Protection and recovery.
	r.CorrectedWords += o.CorrectedWords
	r.UncorrectableWords += o.UncorrectableWords
	r.ScrubPasses += o.ScrubPasses
	r.CheckpointsTaken += o.CheckpointsTaken
	r.Recoveries += o.Recoveries
	r.RecoveryAborted += o.RecoveryAborted
	r.RecoveryBackoffCycles += o.RecoveryBackoffCycles

	// Observability totals.
	r.MapPortOps += o.MapPortOps
	r.BackpressureCycles += o.BackpressureCycles

	// Live-update outcomes.
	r.UpdatesAttempted += o.UpdatesAttempted
	r.UpdatesCompleted += o.UpdatesCompleted
	r.UpdatesRolledBack += o.UpdatesRolledBack
	if r.UpdateStage == "" {
		r.UpdateStage = o.UpdateStage
	}
	if r.UpdateFailure == "" {
		r.UpdateFailure = o.UpdateFailure
	}
	r.MigratedEntries += o.MigratedEntries
	r.DeltaReplayed += o.DeltaReplayed
	r.CanariedPackets += o.CanariedPackets
	r.CanaryDivergences += o.CanaryDivergences
	r.HeldPackets += o.HeldPackets
	r.PostVerifyChecked += o.PostVerifyChecked
	r.PostVerifyDivergences += o.PostVerifyDivergences
	r.MigrationTicks += o.MigrationTicks
	r.CutoverTicks += o.CutoverTicks

	// Multi-queue breakdown.
	r.QueueCount += o.QueueCount
	r.PerQueue = append(r.PerQueue, o.PerQueue...)
	r.SteerFallbacks += o.SteerFallbacks
	r.MergeConflicts += o.MergeConflicts
}
