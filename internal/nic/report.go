package nic

import "ehdl/internal/ebpf"

// TenantSlice is one tenant's slice of a multi-tenant device run: the
// per-tenant ledger (classifier steering, token-bucket policing,
// tenant-death loss) plus the tenant's own traffic, fault, recovery and
// update figures. The slice carries its own identity:
//
//	Steered == Admitted + Throttled + DownLoss
//	Sent    == Admitted + overflow extras == Received + Lost
//
// so per-tenant loss is exactly accounted, never inferred.
type TenantSlice struct {
	// Name identifies the tenant; Add merges slices by it.
	Name string `json:"name"`
	// VLAN is the tenant's classifier tag (0: 5-tuple rules only).
	VLAN uint16 `json:"vlan,omitempty"`

	// Steered counts arrivals the classifier attributed to the tenant
	// (including quarantine steers when the tenant is the default).
	Steered uint64 `json:"steered"`
	// Admitted counts steered frames that passed the token bucket into
	// the tenant's pipeline; Throttled counts the shed overload.
	Admitted  uint64 `json:"admitted"`
	Throttled uint64 `json:"throttled"`
	// DownLoss counts frames lost to the tenant's own unrecoverable
	// pipeline death — contained to this tenant by construction.
	DownLoss uint64 `json:"down_loss"`

	// Shell-side accounting, nic.Report semantics.
	Sent     uint64 `json:"sent"`
	Received uint64 `json:"received"`
	Lost     uint64 `json:"lost"`
	Flushes  uint64 `json:"flushes"`
	Cycles   uint64 `json:"cycles"`

	// Fault and recovery containment figures.
	FaultsInjected uint64 `json:"faults_injected"`
	MalformedSent  uint64 `json:"malformed_sent"`
	Recoveries     uint64 `json:"recoveries"`
	WatchdogTrips  uint64 `json:"watchdog_trips"`

	// Per-tenant hitless-update outcomes.
	UpdatesCompleted  uint64 `json:"updates_completed"`
	UpdatesRolledBack uint64 `json:"updates_rolled_back"`

	AchievedMpps float64 `json:"achieved_mpps"`
	// AvgLatencyNs is Received-weighted under Add.
	AvgLatencyNs float64 `json:"avg_latency_ns"`

	Actions map[ebpf.XDPAction]uint64 `json:"actions,omitempty"`
}

// Accounted states the per-tenant ledger: every steered frame is
// admitted, throttled or lost to the tenant's death, and everything the
// tenant's pipeline was offered retired or was dropped by its ingress
// queue. Both identities are additive, so they survive Add-merges.
func (s TenantSlice) Accounted() bool {
	return s.Steered == s.Admitted+s.Throttled+s.DownLoss &&
		s.Sent == s.Received+s.Lost
}

// add folds another slice of the same tenant into this one.
func (s *TenantSlice) add(o TenantSlice) {
	if tot := s.Received + o.Received; tot > 0 {
		s.AvgLatencyNs = (s.AvgLatencyNs*float64(s.Received) +
			o.AvgLatencyNs*float64(o.Received)) / float64(tot)
	}
	if s.VLAN == 0 {
		s.VLAN = o.VLAN
	}
	s.Steered += o.Steered
	s.Admitted += o.Admitted
	s.Throttled += o.Throttled
	s.DownLoss += o.DownLoss
	s.Sent += o.Sent
	s.Received += o.Received
	s.Lost += o.Lost
	s.Flushes += o.Flushes
	s.Cycles += o.Cycles
	s.FaultsInjected += o.FaultsInjected
	s.MalformedSent += o.MalformedSent
	s.Recoveries += o.Recoveries
	s.WatchdogTrips += o.WatchdogTrips
	s.UpdatesCompleted += o.UpdatesCompleted
	s.UpdatesRolledBack += o.UpdatesRolledBack
	s.AchievedMpps += o.AchievedMpps
	if o.Actions != nil {
		if s.Actions == nil {
			s.Actions = map[ebpf.XDPAction]uint64{}
		}
		for a, n := range o.Actions {
			s.Actions[a] += n
		}
	}
}

// Accounted states the device-level loss ledger: every offered frame
// lands in exactly one of Received (retired with a verdict, aborted
// included), Lost (ingress back-pressure), Throttled (per-tenant
// policing), Quarantined (unclassifiable, no default tenant) or
// TenantDownLoss (tenant pipeline dead). On a classic single-program
// shell the last three are zero and the identity reduces to
// Sent == Received + Lost. The identity is additive, so it survives
// Add-merges across epochs, queues, tenants and fleet shards — the
// noisy-neighbor and fleet chaos gates assert it after every run.
func (r Report) Accounted() bool {
	return r.Sent == r.Received+r.Lost+r.Throttled+r.Quarantined+r.TenantDownLoss
}

// Add folds another device's Report into this one, treating the two as
// parallel shards of one cluster: pure counters sum, rates sum (devices
// add capacity side by side), latency averages are weighted by the
// packets that experienced them, and worst-case figures take the max.
// The fleet controller uses it to build one cluster Report from N
// per-device runs, so the aggregation rules live here — next to the
// counter definitions — rather than ad hoc at the call site.
//
// Aggregation rules that are not plain sums:
//
//   - AvgLatencyNs is Received-weighted; MaxLatencyNs and
//     P99LatencyCycles take the max across devices.
//   - MeanStageOccupancy is Cycles-weighted, FlushPenaltyMean is
//     Flushes-weighted.
//   - UpdateStage and UpdateFailure keep the first non-empty value, so
//     the earliest failing device's cause survives aggregation.
//   - QueueCount takes the max (the widest replica set that served any
//     merged run) and PerQueue entries merge by queue index: the same
//     replica's slices across epochs or shards fold into one breakdown
//     row instead of appending duplicates.
//   - PerTenant sub-reports merge by tenant name, so a tenant's ledger
//     stays one row across epoch folds and fleet aggregation.
func (r *Report) Add(o Report) {
	// Weighted means first, while both sides' weights are still intact.
	if tot := r.Received + o.Received; tot > 0 {
		r.AvgLatencyNs = (r.AvgLatencyNs*float64(r.Received) +
			o.AvgLatencyNs*float64(o.Received)) / float64(tot)
	}
	if tot := r.Cycles + o.Cycles; tot > 0 {
		r.MeanStageOccupancy = (r.MeanStageOccupancy*float64(r.Cycles) +
			o.MeanStageOccupancy*float64(o.Cycles)) / float64(tot)
	}
	if tot := r.Flushes + o.Flushes; tot > 0 {
		r.FlushPenaltyMean = (r.FlushPenaltyMean*float64(r.Flushes) +
			o.FlushPenaltyMean*float64(o.Flushes)) / float64(tot)
	}
	if o.MaxLatencyNs > r.MaxLatencyNs {
		r.MaxLatencyNs = o.MaxLatencyNs
	}
	if o.P99LatencyCycles > r.P99LatencyCycles {
		r.P99LatencyCycles = o.P99LatencyCycles
	}

	// Parallel shards add capacity: rates sum.
	r.OfferedMpps += o.OfferedMpps
	r.AchievedMpps += o.AchievedMpps
	r.OfferedGbps += o.OfferedGbps
	r.AchievedGbps += o.AchievedGbps
	r.FlushesPerS += o.FlushesPerS

	// Traffic accounting.
	r.Sent += o.Sent
	r.Received += o.Received
	r.Lost += o.Lost
	r.Flushes += o.Flushes
	r.Cycles += o.Cycles
	if o.Actions != nil {
		if r.Actions == nil {
			r.Actions = map[ebpf.XDPAction]uint64{}
		}
		for a, n := range o.Actions {
			r.Actions[a] += n
		}
	}

	// Fault-campaign counters.
	r.FaultsInjected += o.FaultsInjected
	r.MalformedSent += o.MalformedSent
	r.MalformedDropped += o.MalformedDropped
	r.QueueOverflows += o.QueueOverflows
	r.OverflowBursts += o.OverflowBursts
	r.WatchdogTrips += o.WatchdogTrips

	// Protection and recovery.
	r.CorrectedWords += o.CorrectedWords
	r.UncorrectableWords += o.UncorrectableWords
	r.ScrubPasses += o.ScrubPasses
	r.CheckpointsTaken += o.CheckpointsTaken
	r.Recoveries += o.Recoveries
	r.RecoveryAborted += o.RecoveryAborted
	r.RecoveryBackoffCycles += o.RecoveryBackoffCycles

	// Observability totals.
	r.MapPortOps += o.MapPortOps
	r.BackpressureCycles += o.BackpressureCycles

	// Live-update outcomes.
	r.UpdatesAttempted += o.UpdatesAttempted
	r.UpdatesCompleted += o.UpdatesCompleted
	r.UpdatesRolledBack += o.UpdatesRolledBack
	if r.UpdateStage == "" {
		r.UpdateStage = o.UpdateStage
	}
	if r.UpdateFailure == "" {
		r.UpdateFailure = o.UpdateFailure
	}
	r.MigratedEntries += o.MigratedEntries
	r.DeltaReplayed += o.DeltaReplayed
	r.CanariedPackets += o.CanariedPackets
	r.CanaryDivergences += o.CanaryDivergences
	r.HeldPackets += o.HeldPackets
	r.PostVerifyChecked += o.PostVerifyChecked
	r.PostVerifyDivergences += o.PostVerifyDivergences
	r.MigrationTicks += o.MigrationTicks
	r.CutoverTicks += o.CutoverTicks

	// Multi-queue breakdown: the same replica index folds into one row.
	if o.QueueCount > r.QueueCount {
		r.QueueCount = o.QueueCount
	}
	for _, oq := range o.PerQueue {
		merged := false
		for i := range r.PerQueue {
			if r.PerQueue[i].Queue == oq.Queue {
				r.PerQueue[i].Steered += oq.Steered
				r.PerQueue[i].Received += oq.Received
				r.PerQueue[i].Lost += oq.Lost
				r.PerQueue[i].Flushes += oq.Flushes
				r.PerQueue[i].Cycles += oq.Cycles
				r.PerQueue[i].AchievedMpps += oq.AchievedMpps
				merged = true
				break
			}
		}
		if !merged {
			r.PerQueue = append(r.PerQueue, oq)
		}
	}
	r.SteerFallbacks += o.SteerFallbacks
	r.MergeConflicts += o.MergeConflicts

	// Multi-tenant breakdown: the same tenant folds into one ledger row.
	r.Throttled += o.Throttled
	r.Quarantined += o.Quarantined
	r.TenantDownLoss += o.TenantDownLoss
	for _, ot := range o.PerTenant {
		merged := false
		for i := range r.PerTenant {
			if r.PerTenant[i].Name == ot.Name {
				r.PerTenant[i].add(ot)
				merged = true
				break
			}
		}
		if !merged {
			cp := ot
			if ot.Actions != nil {
				cp.Actions = map[ebpf.XDPAction]uint64{}
				for a, n := range ot.Actions {
					cp.Actions[a] += n
				}
			}
			r.PerTenant = append(r.PerTenant, cp)
		}
	}
}
