package nic

import (
	"context"

	"ehdl/internal/obs"
)

// runLoadFast is RunLoad on the compiled single-queue engine. It only
// runs for configurations the fast path is eligible for — no fault
// campaign, no protection, no watchdog, no stall policy, no tracing or
// metrics, and no armed live update — so the interpreter loop's hooks
// for those features have nothing to do and are elided. Everything
// that remains mirrors RunLoad bit for bit: the pacing ledger (the
// float `due` accumulator and the per-cycle decrement), the byte
// accounting, the per-completion latency summation in retirement order
// and the closing rate arithmetic, so a report differs from the
// interpreter's only where the timing model itself does (the fast path
// executes the hazard-free pipeline skeleton: Flushes is always zero
// and stall time is not modelled — the matrix in DESIGN.md).
func (sh *Shell) runLoadFast(next func() []byte, count int, offeredPps float64) (Report, error) {
	ctx, endTask := obs.Task(context.Background(), "nic.RunLoadFast")
	defer endTask()
	clock := sh.cfg.clockHz()
	cyclesPerPacket := clock / offeredPps

	var (
		rep       Report
		sent      int
		due       float64
		bytesIn   uint64
		bytesOut  uint64
		startStat = sh.fast.Stats()
	)

	endRegion := obs.Region(ctx, "drive")
	for sent < count || sh.fast.Busy() {
		// Arrivals faster than the clock queue several packets per cycle.
		for sent < count && due <= 0 {
			pkt := next()
			bytesIn += uint64(len(pkt))
			if sh.fast.Inject(pkt) {
				bytesOut += uint64(len(pkt))
			}
			sent++
			due += cyclesPerPacket
		}
		if err := sh.fast.Step(); err != nil {
			endRegion()
			return rep, err
		}
		due--
	}
	endRegion()

	// The whole completion ledger comes out of the engine's counters at
	// the end — the fast path registers no per-packet callback, that
	// indirection costs real throughput at compiled-path budgets. The
	// latency figures fold the host FIFO in closed form; the per-packet
	// float summation the interpreter does would agree to rounding (its
	// latency model diverges from the skeleton's anyway, see DESIGN.md).
	end := sh.fast.Stats().Delta(startStat)
	rep.Cycles = end.Cycles
	rep.Sent = uint64(sent)
	rep.Received = end.Completed
	rep.Actions = end.Actions
	rep.Lost = end.QueueDrops
	rep.Flushes = end.Flushes
	rep.MalformedDropped = end.MalformedDropped
	rep.QueueOverflows = end.QueueOverflows
	seconds := float64(rep.Cycles) / clock
	if seconds > 0 {
		rep.AchievedMpps = float64(rep.Received) / seconds / 1e6
		rep.AchievedGbps = float64(bytesOut+20*rep.Received) * 8 / seconds / 1e9
		rep.FlushesPerS = float64(rep.Flushes) / seconds
	}
	rep.QueueCount = 1
	rep.OfferedMpps = offeredPps / 1e6
	rep.OfferedGbps = float64(bytesIn+20*rep.Sent) * 8 / (float64(sent) * cyclesPerPacket / clock) / 1e9
	if rep.Received > 0 {
		fifo := float64(sh.cfg.fifoCycles())
		rep.AvgLatencyNs = (float64(end.LatencySum)/float64(rep.Received) + fifo) / clock * 1e9
		rep.MaxLatencyNs = (float64(end.LatencyMax) + fifo) / clock * 1e9
	}
	return rep, nil
}
