// Package nic wraps a compiled pipeline in a Corundum-style NIC shell
// (Section 4.5): ingress and egress asynchronous FIFOs decouple the
// pipeline from the MACs, and an offered-load driver plays the role of
// the DPDK traffic generator of the paper's testbed, pacing packets at
// a configured rate and measuring what comes back.
package nic

import (
	"context"
	"fmt"

	"ehdl/internal/core"
	"ehdl/internal/ebpf"
	"ehdl/internal/fastpath"
	"ehdl/internal/faults"
	"ehdl/internal/hwsim"
	"ehdl/internal/liveupdate"
	"ehdl/internal/maps"
	"ehdl/internal/obs"
	"ehdl/internal/rss"
	"ehdl/internal/vm"
)

// ShellConfig parameterises the shell.
type ShellConfig struct {
	// ClockHz is the shell and pipeline clock. 0 means 250 MHz.
	ClockHz float64
	// LinkGbps is the port speed. 0 means 100.
	LinkGbps float64
	// FIFOCycles is the combined latency of the MAC, the ingress and
	// egress async FIFOs and the clock-domain crossings, added to every
	// packet's forwarding latency. 0 means 160 (~640 ns at 250 MHz),
	// which lands end-to-end latency near the paper's microsecond.
	FIFOCycles int
	// Faults configures the shell's fault-injection campaign: when any
	// rate is non-zero the shell builds one seeded injector, hands it to
	// the pipeline simulator (SEU flips, flush storms) and uses it itself
	// to damage generated frames and to fire ingress overflow bursts.
	Faults faults.Config
	// Queues selects multi-queue RSS scale-out (Section 5's replicated
	// deployment): values above 1 instantiate that many independent
	// pipeline replicas behind a Toeplitz flow-hash dispatcher, each on
	// its own goroutine with banked per-flow maps. 0 or 1 keeps the
	// classic single-pipeline shell.
	Queues int
	// Batch is the dispatcher/collector batch size in multi-queue mode
	// (amortised channel operations). 0 means rss.DefaultBatch.
	Batch int
	// FastPath requests the compiled host fast path: the design is
	// compiled once into a per-stage closure chain and packets execute
	// allocation-free, with the cycle-accurate interpreter retained as
	// the conformance oracle. The request falls back to the interpreter
	// silently when the configuration needs it (faults, protection,
	// watchdog, stall policy, tracing, metrics — the matrix in
	// DESIGN.md) and for the single-queue leg of a scheduled live
	// update; Shell.FastPath reports what actually serves.
	FastPath bool
	// Hazard policy and other simulator knobs.
	Sim hwsim.Config
}

func (c ShellConfig) clockHz() float64 {
	if c.ClockHz <= 0 {
		return 250e6
	}
	return c.ClockHz
}

func (c ShellConfig) linkGbps() float64 {
	if c.LinkGbps <= 0 {
		return 100
	}
	return c.LinkGbps
}

func (c ShellConfig) fifoCycles() int {
	if c.FIFOCycles <= 0 {
		return 160
	}
	return c.FIFOCycles
}

// pendingUpdate is an armed-but-not-started live update.
type pendingUpdate struct {
	after int
	cfg   liveupdate.Config
}

// Shell is one instantiated NIC.
type Shell struct {
	cfg ShellConfig
	sim *hwsim.Sim
	pl  *core.Pipeline
	inj *faults.Injector

	// fast is the compiled single-queue engine (nil when not requested,
	// ineligible, or retired by a live-update swap). It shares the
	// interpreter's map environment, so host setup and state are common
	// to both engines and a fallback run continues seamlessly.
	fast *fastpath.Machine

	// engine is the multi-queue RSS scale-out (nil when Queues <= 1).
	engine *rss.Engine

	// Master clock state: helper-visible time survives pipeline swaps.
	// cycleBase is the cycle count retired pipelines accumulated before
	// the serving one took over; pinned, when set, freezes time (tests).
	cycleBase uint64
	pinned    *uint64

	pending *pendingUpdate
	ctrl    *liveupdate.Controller
}

// New builds a shell around a compiled pipeline with fresh maps.
func New(pl *core.Pipeline, cfg ShellConfig) (*Shell, error) {
	cfg.Sim.ClockHz = cfg.clockHz()
	var inj *faults.Injector
	if cfg.Faults.Enabled() {
		inj = faults.New(cfg.Faults)
		cfg.Sim.Faults = inj
	} else if cfg.Sim.Faults != nil {
		// A pre-built injector passed through the simulator config is
		// shared, so shell-side classes (malformed traffic, overflow
		// bursts) stay on the same seeded stream.
		inj = cfg.Sim.Faults
	}
	if cfg.Queues > 1 {
		// Multi-queue scale-out: N replicas behind the RSS dispatcher.
		// The engine forks the injector per replica; the shell keeps the
		// base stream for traffic damage and overflow bursts.
		eng, err := rss.NewEngine(pl, rss.Config{
			Queues:   cfg.Queues,
			Batch:    cfg.Batch,
			Sim:      cfg.Sim,
			FastPath: cfg.FastPath,
		})
		if err != nil {
			return nil, err
		}
		if cfg.Sim.Metrics != nil {
			maps.ObserveSet(eng.HostMaps(), cfg.Sim.Metrics)
		}
		return &Shell{cfg: cfg, pl: pl, inj: inj, engine: eng}, nil
	}
	var fast *fastpath.Machine
	var sim *hwsim.Sim
	if ok, _ := fastpath.Eligible(cfg.Sim); cfg.FastPath && ok {
		// Dual engine over one map environment: the compiled machine
		// serves traffic, the interpreter stands by as the oracle and as
		// the live-update fallback. Sharing the environment keeps host
		// setup, map state and the helper clock common to both.
		env, err := vm.NewEnv(pl.Transformed)
		if err != nil {
			return nil, err
		}
		if sim, err = hwsim.NewWithEnv(pl, cfg.Sim, env); err != nil {
			return nil, err
		}
		if fast, err = fastpath.NewWithEnv(pl, cfg.Sim, env); err != nil {
			return nil, err
		}
	} else {
		var err error
		if sim, err = hwsim.New(pl, cfg.Sim); err != nil {
			return nil, err
		}
	}
	if cfg.Sim.Metrics != nil {
		// With metrics armed the shell also counts the host-port map
		// traffic: the wrappers swap into the shared set, so data plane
		// and host side meter the same objects.
		maps.ObserveSet(sim.Maps(), cfg.Sim.Metrics)
	}
	sh := &Shell{cfg: cfg, sim: sim, pl: pl, inj: inj, fast: fast}
	// The shell owns the helper-visible clock so it stays continuous
	// across a live-update pipeline swap. With no swap and no pin the
	// value is identical to the simulator's built-in cycle clock.
	sh.sim.SetClock(sh.nowNs)
	if sh.fast != nil {
		// Same clock function, same environment: whichever engine runs,
		// time helpers see the shell's master clock.
		sh.fast.SetClock(sh.nowNs)
	}
	return sh, nil
}

// nowNs is the shell's master nanosecond clock: the cycles retired
// pipelines accumulated plus the serving pipeline's, scaled by the
// shell clock. Only one engine of a dual-engine shell runs at a time,
// so elapsed time is the sum of both engines' cycle counts. PinClock
// overrides it with a fixed value.
func (sh *Shell) nowNs() uint64 {
	if sh.pinned != nil {
		return *sh.pinned
	}
	cycles := sh.cycleBase + sh.sim.Cycle()
	if sh.fast != nil {
		cycles += sh.fast.Cycle()
	}
	return uint64(float64(cycles) / sh.cfg.clockHz() * 1e9)
}

// Maps exposes the host-side map interface of the NIC. In multi-queue
// mode this is the merged view: writes before traffic broadcast to
// every replica bank, reads after a run serve the deterministic merge.
func (sh *Shell) Maps() *maps.Set {
	if sh.engine != nil {
		return sh.engine.HostMaps()
	}
	return sh.sim.Maps()
}

// Sim exposes the underlying simulator (for clock pinning in tests).
// Nil in multi-queue mode — use Engine to reach the replicas.
func (sh *Shell) Sim() *hwsim.Sim { return sh.sim }

// Fast exposes the compiled single-queue engine (nil when the shell
// serves from the interpreter or runs multi-queue).
func (sh *Shell) Fast() *fastpath.Machine { return sh.fast }

// FastPath reports whether traffic is served by the compiled fast
// path. A requested fast path that fell back to the interpreter — an
// ineligible configuration, or a single-queue live update — reports
// false; on a multi-queue shell it reflects the replicas' mode.
func (sh *Shell) FastPath() bool {
	if sh.engine != nil {
		return sh.engine.FastPath()
	}
	return sh.fast != nil && sh.pending == nil && sh.ctrl == nil
}

// Engine exposes the multi-queue RSS engine (nil with Queues <= 1).
func (sh *Shell) Engine() *rss.Engine { return sh.engine }

// Injector exposes the shell's fault injector (nil without faults).
func (sh *Shell) Injector() *faults.Injector { return sh.inj }

// Report is the traffic-generator view of a run, the measurements of
// Section 5.1.
type Report struct {
	OfferedMpps  float64
	AchievedMpps float64
	OfferedGbps  float64
	AchievedGbps float64
	Sent         uint64
	Received     uint64
	// Lost counts packets dropped by the input queue (back-pressure),
	// not packets the program decided to drop.
	Lost         uint64
	AvgLatencyNs float64
	MaxLatencyNs float64
	Flushes      uint64
	FlushesPerS  float64
	Actions      map[ebpf.XDPAction]uint64
	Cycles       uint64

	// Resilience measurements (all zero without a fault campaign).

	// FaultsInjected counts faults applied inside the pipeline (SEU
	// flips, forced flush storms).
	FaultsInjected uint64
	// MalformedSent counts generated frames replaced by damaged ones.
	MalformedSent uint64
	// MalformedDropped counts verdicts forced by the hardware bounds
	// check on packet accesses past the frame end.
	MalformedDropped uint64
	// QueueOverflows counts ingress overflow episodes (a burst hitting
	// the full queue is one episode, not one count per lost frame).
	QueueOverflows uint64
	// OverflowBursts counts injected ingress bursts.
	OverflowBursts uint64
	// WatchdogTrips counts livelock-watchdog firings.
	WatchdogTrips uint64

	// Protection and recovery measurements (all zero without a
	// protection level configured in Sim.Protection).

	// CorrectedWords counts single-bit map-word upsets corrected in
	// place by the ECC read port or the scrubber.
	CorrectedWords uint64
	// UncorrectableWords counts detected-but-uncorrectable words; each
	// one triggered a drain-and-restart recovery.
	UncorrectableWords uint64
	// ScrubPasses counts completed background-scrubber sweeps.
	ScrubPasses uint64
	// CheckpointsTaken counts known-good map snapshots recorded.
	CheckpointsTaken uint64
	// Recoveries counts drain-and-restart sequences performed.
	Recoveries uint64
	// RecoveryAborted counts in-flight frames drained as XDP_ABORTED by
	// recoveries.
	RecoveryAborted uint64
	// RecoveryBackoffCycles accumulates post-recovery input-hold time.
	RecoveryBackoffCycles uint64

	// Observability figures, read from the metrics registry (all zero
	// unless Sim.Metrics is configured). They are cumulative over the
	// simulator's lifetime, not deltas of this RunLoad.

	// MeanStageOccupancy is the average number of occupied pipeline
	// stages per cycle (hwsim.stage_occupancy).
	MeanStageOccupancy float64
	// P99LatencyCycles is the 99th-percentile forwarding latency in
	// pipeline cycles (hwsim.cycles_per_packet).
	P99LatencyCycles uint64
	// FlushPenaltyMean is the mean cycles from a flush verdict to the
	// stall release (hwsim.flush_penalty_cycles).
	FlushPenaltyMean float64
	// MapPortOps counts data-plane map port operations
	// (hwsim.map_port_ops).
	MapPortOps uint64
	// BackpressureCycles counts cycles the input held while work was
	// queued (hwsim.inject_backpressure_cycles).
	BackpressureCycles uint64

	// Live-update measurements (all zero unless ScheduleUpdate armed an
	// update that began during this RunLoad).

	// UpdatesAttempted, UpdatesCompleted and UpdatesRolledBack count
	// update outcomes in this run (at most one update per run today).
	UpdatesAttempted  uint64
	UpdatesCompleted  uint64
	UpdatesRolledBack uint64
	// UpdateStage is the controller's final stage ("done",
	// "rolled-back"); empty when no update ran.
	UpdateStage string
	// UpdateFailure describes the rollback (empty on success): the
	// failing stage and the typed cause.
	UpdateFailure string
	// MigratedEntries and DeltaReplayed measure the state migration.
	MigratedEntries uint64
	DeltaReplayed   uint64
	// CanariedPackets counts mirrored packets diffed against the
	// reference interpreter; CanaryDivergences counts mismatches.
	CanariedPackets   uint64
	CanaryDivergences uint64
	// HeldPackets counts arrivals buffered during the cutover drain (all
	// of them released, never dropped).
	HeldPackets uint64
	// PostVerifyChecked and PostVerifyDivergences measure the bounded
	// post-cutover conformance window.
	PostVerifyChecked     uint64
	PostVerifyDivergences uint64
	// MigrationTicks and CutoverTicks are stage lengths in shell cycles.
	MigrationTicks uint64
	CutoverTicks   uint64

	// Multi-queue measurements (QueueCount stays 1 and PerQueue nil on
	// the classic single-pipeline shell).

	// QueueCount is the number of pipeline replicas that served the run.
	QueueCount int
	// PerQueue breaks the run down by replica.
	PerQueue []QueueReport
	// SteerFallbacks counts malformed/non-IP frames the dispatcher
	// steered to the queue-0 catch-all.
	SteerFallbacks uint64
	// MergeConflicts counts map keys mutated by more than one replica
	// bank — zero while flow pinning holds (anything else is a
	// dispatcher bug surfaced by the merge).
	MergeConflicts uint64

	// Multi-tenant measurements (all zero off a multi-tenant device).
	// On a tenant device Sent counts every classified arrival plus
	// fault-injected extras, so the ledger identity Accounted() holds:
	// each arrival lands in exactly one of Received, Lost, Throttled,
	// Quarantined or TenantDownLoss.

	// Throttled counts frames shed by per-tenant token-bucket ingress
	// policing (a tenant exceeding its share loses its own frames, not
	// a neighbour's).
	Throttled uint64
	// Quarantined counts unclassifiable frames steered to the device
	// quarantine bucket because no default tenant was configured. They
	// are counted and traced, never dropped silently.
	Quarantined uint64
	// TenantDownLoss counts frames addressed to a tenant whose pipeline
	// died unrecoverably: the unserved remainder at death plus every
	// later arrival for it.
	TenantDownLoss uint64
	// PerTenant breaks the run down by tenant.
	PerTenant []TenantSlice
}

// QueueReport is one replica's slice of a multi-queue run.
type QueueReport struct {
	// Queue is the replica index.
	Queue int
	// Steered counts arrivals the dispatcher classified to the queue.
	Steered uint64
	// Received counts packets the replica retired.
	Received uint64
	// Lost counts ingress-queue drops (back-pressure), as in Report.
	Lost uint64
	// Flushes counts RAW-hazard flush episodes in the replica.
	Flushes uint64
	// Cycles is the replica's simulated cycle count including its drain
	// tail.
	Cycles uint64
	// AchievedMpps is the replica's own throughput over its cycles.
	AchievedMpps float64
}

// LineRateMpps returns the port's packet rate for a frame size.
func (sh *Shell) LineRateMpps(frameLen int) float64 {
	wire := float64(frameLen+20) * 8
	return sh.cfg.linkGbps() * 1e9 / wire / 1e6
}

// RunLoad offers `count` packets from next() at `offeredPps` and runs
// until the pipeline drains. The generator paces arrivals in clock
// cycles like the testbed's DPDK generator paces them on the wire.
func (sh *Shell) RunLoad(next func() []byte, count int, offeredPps float64) (Report, error) {
	if offeredPps <= 0 {
		return Report{}, fmt.Errorf("nic: offered rate must be positive")
	}
	if sh.engine != nil {
		return sh.runLoadMulti(next, count, offeredPps)
	}
	if sh.fast != nil && sh.pending == nil && sh.ctrl == nil {
		// The compiled engine serves whenever no live update is armed;
		// an update run falls back to the interpreter below (shared map
		// environment, so state carries over either way).
		return sh.runLoadFast(next, count, offeredPps)
	}
	// Annotate the run for runtime/trace consumers (-runtime-trace on
	// the CLIs); free when no execution trace is active.
	ctx, endTask := obs.Task(context.Background(), "nic.RunLoad")
	defer endTask()
	clock := sh.cfg.clockHz()
	cyclesPerPacket := clock / offeredPps

	var (
		rep       Report
		sent      int
		due       float64
		bytesIn   uint64
		bytesOut  uint64
		acc       hwsim.Stats
		startStat = sh.sim.Stats()
		began     bool
		beginErr  *liveupdate.UpdateError
	)
	rep.Actions = map[ebpf.XDPAction]uint64{}

	var startFaults faults.Counters
	if sh.inj != nil {
		startFaults = sh.inj.Counters()
		next = sh.inj.WrapTraffic(next)
	}

	dispatch := func(r hwsim.Result) {
		rep.Received++
		rep.Actions[r.Action]++
		lat := (float64(r.LatencyCycles) + float64(sh.cfg.fifoCycles())) / clock * 1e9
		rep.AvgLatencyNs += lat
		if lat > rep.MaxLatencyNs {
			rep.MaxLatencyNs = lat
		}
		if sh.ctrl != nil {
			sh.ctrl.NoteCompletion(r)
		}
	}
	sh.sim.OnComplete(dispatch)
	defer func() { sh.sim.OnComplete(nil) }()

	// release holds packets the update controller buffered during the
	// cutover drain; they re-enter as the ingress queue frees, ahead of
	// newer arrivals, so the update never drops or reorders a packet.
	var release [][]byte
	drainRelease := func() {
		for len(release) > 0 && sh.sim.InputFree() {
			pkt := release[0]
			release = release[1:]
			if sh.sim.Inject(pkt) {
				bytesOut += uint64(len(pkt))
				if sh.ctrl != nil {
					sh.ctrl.NoteInjected(pkt)
				}
			}
		}
	}

	// inject routes one generated arrival: the update controller may
	// hold it during the cutover drain (it comes back via Release, never
	// dropped), otherwise it goes to the serving pipeline — behind any
	// released backlog, to preserve arrival order.
	inject := func(pkt []byte) {
		bytesIn += uint64(len(pkt))
		if sh.ctrl != nil && sh.ctrl.OfferPacket(pkt) {
			return
		}
		if len(release) > 0 {
			release = append(release, pkt)
			return
		}
		if sh.sim.Inject(pkt) {
			bytesOut += uint64(len(pkt))
			if sh.ctrl != nil {
				sh.ctrl.NoteInjected(pkt)
			}
		}
	}

	endRegion := obs.Region(ctx, "drive")
	extra := 0
	for sent < count || sh.sim.Busy() || len(release) > 0 || (sh.ctrl != nil && sh.ctrl.Active()) {
		// Arm the scheduled update once enough traffic was offered.
		if sh.pending != nil && sent >= sh.pending.after {
			p := sh.pending
			sh.pending = nil
			ucfg := p.cfg
			ucfg.Sim.ClockHz = clock
			if ucfg.Sim.Faults == nil && sh.inj != nil {
				// The shadow runs its own forked fault campaign: same
				// determinism, zero draws stolen from the serving
				// pipeline's per-class streams.
				ucfg.Sim.Faults = sh.inj.Fork(1)
			}
			rep.UpdatesAttempted++
			began = true
			ctrl, err := liveupdate.Begin(sh.sim, ucfg, sh.nowNs)
			if err != nil {
				rep.UpdatesRolledBack++
				if ue, ok := err.(*liveupdate.UpdateError); ok {
					beginErr = ue
				} else {
					beginErr = &liveupdate.UpdateError{Stage: liveupdate.StageShadow, Err: err}
				}
			} else {
				sh.ctrl = ctrl
			}
		}
		// Arrivals faster than the clock queue several packets per cycle.
		for sent < count && due <= 0 {
			inject(next())
			sent++
			due += cyclesPerPacket
		}
		if sh.inj != nil && sent < count && sh.inj.Roll(faults.QueueOverflow) {
			// Ingress overflow burst: a full burst of frames lands in this
			// cycle on top of the paced load. The bounded input queue
			// absorbs what it can and drops the rest — counted, never an
			// error.
			for i := 0; i < sh.inj.BurstLen(); i++ {
				inject(next())
				extra++
			}
			sh.inj.Note(faults.QueueOverflow)
		}
		if err := sh.sim.Step(); err != nil {
			endRegion()
			return rep, err
		}
		if sh.ctrl != nil && sh.ctrl.Active() {
			res := sh.ctrl.Tick()
			if res.Switched != nil {
				// Atomic cutover: fold the retired pipeline's counters into
				// the aggregate, keep the master clock continuous, swap the
				// ingress, and re-register the completion dispatcher.
				acc = acc.Add(sh.sim.Stats().Delta(startStat))
				sh.cycleBase += sh.sim.Cycle() - res.Switched.Cycle()
				if sh.fast != nil {
					// The compiled engine ran the old program; retire it and
					// keep its cycles on the master clock. Later runs serve
					// from the new interpreter pipeline.
					sh.cycleBase += sh.fast.Cycle()
					sh.fast = nil
				}
				sh.sim = res.Switched
				sh.sim.OnComplete(dispatch)
				startStat = sh.sim.Stats()
			}
			// Held arrivals re-enter in order — into the new pipeline
			// after a switch, back into the old one after a rollback —
			// paced by the ingress queue so none is ever dropped.
			release = append(release, res.Release...)
		}
		drainRelease()
		due--
	}
	endRegion()

	end := acc.Add(sh.sim.Stats().Delta(startStat))
	rep.Cycles = end.Cycles
	rep.Sent = uint64(sent + extra)
	rep.Lost = end.QueueDrops
	rep.Flushes = end.Flushes
	rep.FaultsInjected = end.FaultsInjected
	rep.MalformedDropped = end.MalformedDropped
	rep.QueueOverflows = end.QueueOverflows
	rep.WatchdogTrips = end.WatchdogTrips
	rep.CorrectedWords = end.CorrectedWords
	rep.UncorrectableWords = end.UncorrectableWords
	rep.ScrubPasses = end.ScrubPasses
	rep.CheckpointsTaken = end.CheckpointsTaken
	rep.Recoveries = end.Recoveries
	rep.RecoveryAborted = end.RecoveryAborted
	rep.RecoveryBackoffCycles = end.RecoveryBackoffCycles
	if sh.inj != nil {
		endFaults := sh.inj.Counters()
		rep.MalformedSent = endFaults.ByClass[faults.MalformedTraffic] - startFaults.ByClass[faults.MalformedTraffic]
		rep.OverflowBursts = endFaults.ByClass[faults.QueueOverflow] - startFaults.ByClass[faults.QueueOverflow]
	}
	if began {
		if beginErr != nil {
			rep.UpdateStage = liveupdate.StageRolledBack.String()
			rep.UpdateFailure = beginErr.Error()
		} else if st := sh.ctrl.Stats(); true {
			rep.UpdateStage = st.Stage.String()
			rep.MigratedEntries = st.MigratedEntries
			rep.DeltaReplayed = st.DeltaReplayed
			rep.CanariedPackets = st.CanariedPackets
			rep.CanaryDivergences = st.CanaryDivergences
			rep.HeldPackets = st.HeldPackets
			rep.PostVerifyChecked = st.PostVerifyChecked
			rep.PostVerifyDivergences = st.PostVerifyDivergences
			rep.MigrationTicks = st.MigrationTicks
			rep.CutoverTicks = st.CutoverTicks
			switch st.Stage {
			case liveupdate.StageDone:
				rep.UpdatesCompleted++
			case liveupdate.StageRolledBack:
				rep.UpdatesRolledBack++
				if ue := sh.ctrl.Err(); ue != nil {
					rep.UpdateFailure = ue.Error()
				}
			}
		}
	}
	seconds := float64(rep.Cycles) / clock
	if seconds > 0 {
		rep.AchievedMpps = float64(rep.Received) / seconds / 1e6
		rep.AchievedGbps = float64(bytesOut+20*rep.Received) * 8 / seconds / 1e9
		rep.FlushesPerS = float64(rep.Flushes) / seconds
	}
	rep.QueueCount = 1
	rep.OfferedMpps = offeredPps / 1e6
	rep.OfferedGbps = float64(bytesIn+20*rep.Sent) * 8 / (float64(sent) * cyclesPerPacket / clock) / 1e9
	if rep.Received > 0 {
		rep.AvgLatencyNs /= float64(rep.Received)
	}
	if reg := sh.cfg.Sim.Metrics; reg != nil {
		if h, ok := reg.HistogramByName(hwsim.MetricStageOccupancy); ok {
			rep.MeanStageOccupancy = h.Mean()
		}
		if h, ok := reg.HistogramByName(hwsim.MetricCyclesPerPacket); ok {
			rep.P99LatencyCycles = h.Quantile(0.99)
		}
		if h, ok := reg.HistogramByName(hwsim.MetricFlushPenalty); ok {
			rep.FlushPenaltyMean = h.Mean()
		}
		rep.MapPortOps, _ = reg.CounterValue(hwsim.MetricMapPortOps)
		rep.BackpressureCycles, _ = reg.CounterValue(hwsim.MetricBackpressure)
	}
	return rep, nil
}

// SaturationMpps ramps the offered rate until packets are lost and
// returns the highest loss-free throughput — how the paper determines
// the maximum sustained rate of a design (e.g. the 29 -> 12 Mpps
// single-flow degradation of Section 5.3).
func (sh *Shell) SaturationMpps(next func() []byte, perStep int, startMpps, stepMpps, maxMpps float64) (float64, error) {
	best := 0.0
	for rate := startMpps; rate <= maxMpps; rate += stepMpps {
		rep, err := sh.RunLoad(next, perStep, rate*1e6)
		if err != nil {
			return 0, err
		}
		if rep.Lost > 0 {
			break
		}
		best = rate
	}
	return best, nil
}

// PinClock fixes the helper-visible time (tests). The pin rides the
// shell's master clock, so it survives a live-update pipeline swap. In
// multi-queue mode the pin applies to every replica (and to replicas
// installed by a later update swap).
func (sh *Shell) PinClock(now uint64) {
	sh.pinned = &now
	if sh.engine != nil {
		sh.engine.SetClock(sh.pinnedNow)
	}
}

// pinnedNow serves the pinned clock to multi-queue replicas.
func (sh *Shell) pinnedNow() uint64 { return *sh.pinned }

// ScheduleUpdate arms a hitless live update: once RunLoad has offered
// `after` packets it begins the shadow/migrate/canary/cutover sequence
// against the serving pipeline. The update either commits (the new
// program serves all subsequent traffic, with the old pipeline's map
// state migrated) or rolls back (the old pipeline never stopped
// serving); either way no packet is dropped by the update itself.
func (sh *Shell) ScheduleUpdate(after int, cfg liveupdate.Config) error {
	if cfg.Prog == nil {
		return fmt.Errorf("nic: live update needs a program")
	}
	if after < 0 {
		return fmt.Errorf("nic: update trigger must be >= 0 packets")
	}
	sh.pending = &pendingUpdate{after: after, cfg: cfg}
	sh.ctrl = nil
	return nil
}

// Update exposes the last update's controller state (nil before any
// update began).
func (sh *Shell) Update() *liveupdate.Controller { return sh.ctrl }
