// Package nic wraps a compiled pipeline in a Corundum-style NIC shell
// (Section 4.5): ingress and egress asynchronous FIFOs decouple the
// pipeline from the MACs, and an offered-load driver plays the role of
// the DPDK traffic generator of the paper's testbed, pacing packets at
// a configured rate and measuring what comes back.
package nic

import (
	"context"
	"fmt"

	"ehdl/internal/core"
	"ehdl/internal/ebpf"
	"ehdl/internal/faults"
	"ehdl/internal/hwsim"
	"ehdl/internal/maps"
	"ehdl/internal/obs"
)

// ShellConfig parameterises the shell.
type ShellConfig struct {
	// ClockHz is the shell and pipeline clock. 0 means 250 MHz.
	ClockHz float64
	// LinkGbps is the port speed. 0 means 100.
	LinkGbps float64
	// FIFOCycles is the combined latency of the MAC, the ingress and
	// egress async FIFOs and the clock-domain crossings, added to every
	// packet's forwarding latency. 0 means 160 (~640 ns at 250 MHz),
	// which lands end-to-end latency near the paper's microsecond.
	FIFOCycles int
	// Faults configures the shell's fault-injection campaign: when any
	// rate is non-zero the shell builds one seeded injector, hands it to
	// the pipeline simulator (SEU flips, flush storms) and uses it itself
	// to damage generated frames and to fire ingress overflow bursts.
	Faults faults.Config
	// Hazard policy and other simulator knobs.
	Sim hwsim.Config
}

func (c ShellConfig) clockHz() float64 {
	if c.ClockHz <= 0 {
		return 250e6
	}
	return c.ClockHz
}

func (c ShellConfig) linkGbps() float64 {
	if c.LinkGbps <= 0 {
		return 100
	}
	return c.LinkGbps
}

func (c ShellConfig) fifoCycles() int {
	if c.FIFOCycles <= 0 {
		return 160
	}
	return c.FIFOCycles
}

// Shell is one instantiated NIC.
type Shell struct {
	cfg ShellConfig
	sim *hwsim.Sim
	pl  *core.Pipeline
	inj *faults.Injector
}

// New builds a shell around a compiled pipeline with fresh maps.
func New(pl *core.Pipeline, cfg ShellConfig) (*Shell, error) {
	cfg.Sim.ClockHz = cfg.clockHz()
	var inj *faults.Injector
	if cfg.Faults.Enabled() {
		inj = faults.New(cfg.Faults)
		cfg.Sim.Faults = inj
	} else if cfg.Sim.Faults != nil {
		// A pre-built injector passed through the simulator config is
		// shared, so shell-side classes (malformed traffic, overflow
		// bursts) stay on the same seeded stream.
		inj = cfg.Sim.Faults
	}
	sim, err := hwsim.New(pl, cfg.Sim)
	if err != nil {
		return nil, err
	}
	if cfg.Sim.Metrics != nil {
		// With metrics armed the shell also counts the host-port map
		// traffic: the wrappers swap into the shared set, so data plane
		// and host side meter the same objects.
		maps.ObserveSet(sim.Maps(), cfg.Sim.Metrics)
	}
	return &Shell{cfg: cfg, sim: sim, pl: pl, inj: inj}, nil
}

// Maps exposes the host-side map interface of the NIC.
func (sh *Shell) Maps() *maps.Set { return sh.sim.Maps() }

// Sim exposes the underlying simulator (for clock pinning in tests).
func (sh *Shell) Sim() *hwsim.Sim { return sh.sim }

// Injector exposes the shell's fault injector (nil without faults).
func (sh *Shell) Injector() *faults.Injector { return sh.inj }

// Report is the traffic-generator view of a run, the measurements of
// Section 5.1.
type Report struct {
	OfferedMpps  float64
	AchievedMpps float64
	OfferedGbps  float64
	AchievedGbps float64
	Sent         uint64
	Received     uint64
	// Lost counts packets dropped by the input queue (back-pressure),
	// not packets the program decided to drop.
	Lost         uint64
	AvgLatencyNs float64
	MaxLatencyNs float64
	Flushes      uint64
	FlushesPerS  float64
	Actions      map[ebpf.XDPAction]uint64
	Cycles       uint64

	// Resilience measurements (all zero without a fault campaign).

	// FaultsInjected counts faults applied inside the pipeline (SEU
	// flips, forced flush storms).
	FaultsInjected uint64
	// MalformedSent counts generated frames replaced by damaged ones.
	MalformedSent uint64
	// MalformedDropped counts verdicts forced by the hardware bounds
	// check on packet accesses past the frame end.
	MalformedDropped uint64
	// QueueOverflows counts ingress overflow episodes (a burst hitting
	// the full queue is one episode, not one count per lost frame).
	QueueOverflows uint64
	// OverflowBursts counts injected ingress bursts.
	OverflowBursts uint64
	// WatchdogTrips counts livelock-watchdog firings.
	WatchdogTrips uint64

	// Protection and recovery measurements (all zero without a
	// protection level configured in Sim.Protection).

	// CorrectedWords counts single-bit map-word upsets corrected in
	// place by the ECC read port or the scrubber.
	CorrectedWords uint64
	// UncorrectableWords counts detected-but-uncorrectable words; each
	// one triggered a drain-and-restart recovery.
	UncorrectableWords uint64
	// ScrubPasses counts completed background-scrubber sweeps.
	ScrubPasses uint64
	// CheckpointsTaken counts known-good map snapshots recorded.
	CheckpointsTaken uint64
	// Recoveries counts drain-and-restart sequences performed.
	Recoveries uint64
	// RecoveryAborted counts in-flight frames drained as XDP_ABORTED by
	// recoveries.
	RecoveryAborted uint64
	// RecoveryBackoffCycles accumulates post-recovery input-hold time.
	RecoveryBackoffCycles uint64

	// Observability figures, read from the metrics registry (all zero
	// unless Sim.Metrics is configured). They are cumulative over the
	// simulator's lifetime, not deltas of this RunLoad.

	// MeanStageOccupancy is the average number of occupied pipeline
	// stages per cycle (hwsim.stage_occupancy).
	MeanStageOccupancy float64
	// P99LatencyCycles is the 99th-percentile forwarding latency in
	// pipeline cycles (hwsim.cycles_per_packet).
	P99LatencyCycles uint64
	// FlushPenaltyMean is the mean cycles from a flush verdict to the
	// stall release (hwsim.flush_penalty_cycles).
	FlushPenaltyMean float64
	// MapPortOps counts data-plane map port operations
	// (hwsim.map_port_ops).
	MapPortOps uint64
	// BackpressureCycles counts cycles the input held while work was
	// queued (hwsim.inject_backpressure_cycles).
	BackpressureCycles uint64
}

// LineRateMpps returns the port's packet rate for a frame size.
func (sh *Shell) LineRateMpps(frameLen int) float64 {
	wire := float64(frameLen+20) * 8
	return sh.cfg.linkGbps() * 1e9 / wire / 1e6
}

// RunLoad offers `count` packets from next() at `offeredPps` and runs
// until the pipeline drains. The generator paces arrivals in clock
// cycles like the testbed's DPDK generator paces them on the wire.
func (sh *Shell) RunLoad(next func() []byte, count int, offeredPps float64) (Report, error) {
	if offeredPps <= 0 {
		return Report{}, fmt.Errorf("nic: offered rate must be positive")
	}
	// Annotate the run for runtime/trace consumers (-runtime-trace on
	// the CLIs); free when no execution trace is active.
	ctx, endTask := obs.Task(context.Background(), "nic.RunLoad")
	defer endTask()
	clock := sh.cfg.clockHz()
	cyclesPerPacket := clock / offeredPps

	var (
		rep       Report
		sent      int
		due       float64
		bytesIn   uint64
		bytesOut  uint64
		startStat = sh.sim.Stats()
	)
	rep.Actions = map[ebpf.XDPAction]uint64{}

	var startFaults faults.Counters
	if sh.inj != nil {
		startFaults = sh.inj.Counters()
		next = sh.inj.WrapTraffic(next)
	}

	sh.sim.OnComplete(func(r hwsim.Result) {
		rep.Received++
		rep.Actions[r.Action]++
		lat := (float64(r.LatencyCycles) + float64(sh.cfg.fifoCycles())) / clock * 1e9
		rep.AvgLatencyNs += lat
		if lat > rep.MaxLatencyNs {
			rep.MaxLatencyNs = lat
		}
	})
	defer sh.sim.OnComplete(nil)

	endRegion := obs.Region(ctx, "drive")
	extra := 0
	for sent < count || sh.sim.Busy() {
		// Arrivals faster than the clock queue several packets per cycle.
		for sent < count && due <= 0 {
			pkt := next()
			bytesIn += uint64(len(pkt))
			if sh.sim.Inject(pkt) {
				bytesOut += uint64(len(pkt))
			}
			sent++
			due += cyclesPerPacket
		}
		if sh.inj != nil && sent < count && sh.inj.Roll(faults.QueueOverflow) {
			// Ingress overflow burst: a full burst of frames lands in this
			// cycle on top of the paced load. The bounded input queue
			// absorbs what it can and drops the rest — counted, never an
			// error.
			for i := 0; i < sh.inj.BurstLen(); i++ {
				pkt := next()
				bytesIn += uint64(len(pkt))
				if sh.sim.Inject(pkt) {
					bytesOut += uint64(len(pkt))
				}
				extra++
			}
			sh.inj.Note(faults.QueueOverflow)
		}
		if err := sh.sim.Step(); err != nil {
			endRegion()
			return rep, err
		}
		due--
	}
	endRegion()

	end := sh.sim.Stats()
	rep.Cycles = end.Cycles - startStat.Cycles
	rep.Sent = uint64(sent + extra)
	rep.Lost = end.QueueDrops - startStat.QueueDrops
	rep.Flushes = end.Flushes - startStat.Flushes
	rep.FaultsInjected = end.FaultsInjected - startStat.FaultsInjected
	rep.MalformedDropped = end.MalformedDropped - startStat.MalformedDropped
	rep.QueueOverflows = end.QueueOverflows - startStat.QueueOverflows
	rep.WatchdogTrips = end.WatchdogTrips - startStat.WatchdogTrips
	rep.CorrectedWords = end.CorrectedWords - startStat.CorrectedWords
	rep.UncorrectableWords = end.UncorrectableWords - startStat.UncorrectableWords
	rep.ScrubPasses = end.ScrubPasses - startStat.ScrubPasses
	rep.CheckpointsTaken = end.CheckpointsTaken - startStat.CheckpointsTaken
	rep.Recoveries = end.Recoveries - startStat.Recoveries
	rep.RecoveryAborted = end.RecoveryAborted - startStat.RecoveryAborted
	rep.RecoveryBackoffCycles = end.RecoveryBackoffCycles - startStat.RecoveryBackoffCycles
	if sh.inj != nil {
		endFaults := sh.inj.Counters()
		rep.MalformedSent = endFaults.ByClass[faults.MalformedTraffic] - startFaults.ByClass[faults.MalformedTraffic]
		rep.OverflowBursts = endFaults.ByClass[faults.QueueOverflow] - startFaults.ByClass[faults.QueueOverflow]
	}
	seconds := float64(rep.Cycles) / clock
	if seconds > 0 {
		rep.AchievedMpps = float64(rep.Received) / seconds / 1e6
		rep.AchievedGbps = float64(bytesOut+20*rep.Received) * 8 / seconds / 1e9
		rep.FlushesPerS = float64(rep.Flushes) / seconds
	}
	rep.OfferedMpps = offeredPps / 1e6
	rep.OfferedGbps = float64(bytesIn+20*rep.Sent) * 8 / (float64(sent) * cyclesPerPacket / clock) / 1e9
	if rep.Received > 0 {
		rep.AvgLatencyNs /= float64(rep.Received)
	}
	if reg := sh.cfg.Sim.Metrics; reg != nil {
		if h, ok := reg.HistogramByName(hwsim.MetricStageOccupancy); ok {
			rep.MeanStageOccupancy = h.Mean()
		}
		if h, ok := reg.HistogramByName(hwsim.MetricCyclesPerPacket); ok {
			rep.P99LatencyCycles = h.Quantile(0.99)
		}
		if h, ok := reg.HistogramByName(hwsim.MetricFlushPenalty); ok {
			rep.FlushPenaltyMean = h.Mean()
		}
		rep.MapPortOps, _ = reg.CounterValue(hwsim.MetricMapPortOps)
		rep.BackpressureCycles, _ = reg.CounterValue(hwsim.MetricBackpressure)
	}
	return rep, nil
}

// SaturationMpps ramps the offered rate until packets are lost and
// returns the highest loss-free throughput — how the paper determines
// the maximum sustained rate of a design (e.g. the 29 -> 12 Mpps
// single-flow degradation of Section 5.3).
func (sh *Shell) SaturationMpps(next func() []byte, perStep int, startMpps, stepMpps, maxMpps float64) (float64, error) {
	best := 0.0
	for rate := startMpps; rate <= maxMpps; rate += stepMpps {
		rep, err := sh.RunLoad(next, perStep, rate*1e6)
		if err != nil {
			return 0, err
		}
		if rep.Lost > 0 {
			break
		}
		best = rate
	}
	return best, nil
}

// PinClock fixes the helper-visible time (tests).
func (sh *Shell) PinClock(now uint64) {
	sh.sim.SetClock(func() uint64 { return now })
}
