// Package nic wraps a compiled pipeline in a Corundum-style NIC shell
// (Section 4.5): ingress and egress asynchronous FIFOs decouple the
// pipeline from the MACs, and an offered-load driver plays the role of
// the DPDK traffic generator of the paper's testbed, pacing packets at
// a configured rate and measuring what comes back.
package nic

import (
	"fmt"

	"ehdl/internal/core"
	"ehdl/internal/ebpf"
	"ehdl/internal/hwsim"
	"ehdl/internal/maps"
)

// ShellConfig parameterises the shell.
type ShellConfig struct {
	// ClockHz is the shell and pipeline clock. 0 means 250 MHz.
	ClockHz float64
	// LinkGbps is the port speed. 0 means 100.
	LinkGbps float64
	// FIFOCycles is the combined latency of the MAC, the ingress and
	// egress async FIFOs and the clock-domain crossings, added to every
	// packet's forwarding latency. 0 means 160 (~640 ns at 250 MHz),
	// which lands end-to-end latency near the paper's microsecond.
	FIFOCycles int
	// Hazard policy and other simulator knobs.
	Sim hwsim.Config
}

func (c ShellConfig) clockHz() float64 {
	if c.ClockHz <= 0 {
		return 250e6
	}
	return c.ClockHz
}

func (c ShellConfig) linkGbps() float64 {
	if c.LinkGbps <= 0 {
		return 100
	}
	return c.LinkGbps
}

func (c ShellConfig) fifoCycles() int {
	if c.FIFOCycles <= 0 {
		return 160
	}
	return c.FIFOCycles
}

// Shell is one instantiated NIC.
type Shell struct {
	cfg ShellConfig
	sim *hwsim.Sim
	pl  *core.Pipeline
}

// New builds a shell around a compiled pipeline with fresh maps.
func New(pl *core.Pipeline, cfg ShellConfig) (*Shell, error) {
	cfg.Sim.ClockHz = cfg.clockHz()
	sim, err := hwsim.New(pl, cfg.Sim)
	if err != nil {
		return nil, err
	}
	return &Shell{cfg: cfg, sim: sim, pl: pl}, nil
}

// Maps exposes the host-side map interface of the NIC.
func (sh *Shell) Maps() *maps.Set { return sh.sim.Maps() }

// Sim exposes the underlying simulator (for clock pinning in tests).
func (sh *Shell) Sim() *hwsim.Sim { return sh.sim }

// Report is the traffic-generator view of a run, the measurements of
// Section 5.1.
type Report struct {
	OfferedMpps  float64
	AchievedMpps float64
	OfferedGbps  float64
	AchievedGbps float64
	Sent         uint64
	Received     uint64
	// Lost counts packets dropped by the input queue (back-pressure),
	// not packets the program decided to drop.
	Lost         uint64
	AvgLatencyNs float64
	MaxLatencyNs float64
	Flushes      uint64
	FlushesPerS  float64
	Actions      map[ebpf.XDPAction]uint64
	Cycles       uint64
}

// LineRateMpps returns the port's packet rate for a frame size.
func (sh *Shell) LineRateMpps(frameLen int) float64 {
	wire := float64(frameLen+20) * 8
	return sh.cfg.linkGbps() * 1e9 / wire / 1e6
}

// RunLoad offers `count` packets from next() at `offeredPps` and runs
// until the pipeline drains. The generator paces arrivals in clock
// cycles like the testbed's DPDK generator paces them on the wire.
func (sh *Shell) RunLoad(next func() []byte, count int, offeredPps float64) (Report, error) {
	if offeredPps <= 0 {
		return Report{}, fmt.Errorf("nic: offered rate must be positive")
	}
	clock := sh.cfg.clockHz()
	cyclesPerPacket := clock / offeredPps

	var (
		rep       Report
		sent      int
		due       float64
		bytesIn   uint64
		bytesOut  uint64
		startStat = sh.sim.Stats()
	)
	rep.Actions = map[ebpf.XDPAction]uint64{}

	sh.sim.OnComplete(func(r hwsim.Result) {
		rep.Received++
		rep.Actions[r.Action]++
		lat := (float64(r.LatencyCycles) + float64(sh.cfg.fifoCycles())) / clock * 1e9
		rep.AvgLatencyNs += lat
		if lat > rep.MaxLatencyNs {
			rep.MaxLatencyNs = lat
		}
	})
	defer sh.sim.OnComplete(nil)

	for sent < count || sh.sim.Busy() {
		// Arrivals faster than the clock queue several packets per cycle.
		for sent < count && due <= 0 {
			pkt := next()
			bytesIn += uint64(len(pkt))
			if sh.sim.Inject(pkt) {
				bytesOut += uint64(len(pkt))
			}
			sent++
			due += cyclesPerPacket
		}
		if err := sh.sim.Step(); err != nil {
			return rep, err
		}
		due--
	}

	end := sh.sim.Stats()
	rep.Cycles = end.Cycles - startStat.Cycles
	rep.Sent = uint64(sent)
	rep.Lost = end.QueueDrops - startStat.QueueDrops
	rep.Flushes = end.Flushes - startStat.Flushes
	seconds := float64(rep.Cycles) / clock
	if seconds > 0 {
		rep.AchievedMpps = float64(rep.Received) / seconds / 1e6
		rep.AchievedGbps = float64(bytesOut+20*rep.Received) * 8 / seconds / 1e9
		rep.FlushesPerS = float64(rep.Flushes) / seconds
	}
	rep.OfferedMpps = offeredPps / 1e6
	rep.OfferedGbps = float64(bytesIn+20*rep.Sent) * 8 / (float64(sent) * cyclesPerPacket / clock) / 1e9
	if rep.Received > 0 {
		rep.AvgLatencyNs /= float64(rep.Received)
	}
	return rep, nil
}

// SaturationMpps ramps the offered rate until packets are lost and
// returns the highest loss-free throughput — how the paper determines
// the maximum sustained rate of a design (e.g. the 29 -> 12 Mpps
// single-flow degradation of Section 5.3).
func (sh *Shell) SaturationMpps(next func() []byte, perStep int, startMpps, stepMpps, maxMpps float64) (float64, error) {
	best := 0.0
	for rate := startMpps; rate <= maxMpps; rate += stepMpps {
		rep, err := sh.RunLoad(next, perStep, rate*1e6)
		if err != nil {
			return 0, err
		}
		if rep.Lost > 0 {
			break
		}
		best = rate
	}
	return best, nil
}

// PinClock fixes the helper-visible time (tests).
func (sh *Shell) PinClock(now uint64) {
	sh.sim.SetClock(func() uint64 { return now })
}
