package nic

import (
	"encoding/binary"
	"errors"
	"testing"

	"ehdl/internal/apps"
	"ehdl/internal/core"
	"ehdl/internal/ebpf"
	"ehdl/internal/faults"
	"ehdl/internal/hwsim"
	"ehdl/internal/liveupdate"
	"ehdl/internal/maps"
	"ehdl/internal/pktgen"
)

func TestMultiQueueRunLoad(t *testing.T) {
	const count = 2000
	sh := newShell(t, apps.Toy(), core.Options{}, ShellConfig{Queues: 4, Sim: hwsim.Config{InputQueuePackets: 64}})
	if sh.Sim() != nil {
		t.Fatal("multi-queue shell should not expose a single simulator")
	}
	if sh.Engine() == nil || sh.Engine().Queues() != 4 {
		t.Fatal("multi-queue shell should expose a 4-replica engine")
	}
	gen := pktgen.NewGenerator(apps.Toy().Traffic)
	rep, err := sh.RunLoad(gen.Next, count, sh.LineRateMpps(64)*1e6)
	if err != nil {
		t.Fatal(err)
	}

	if rep.QueueCount != 4 || len(rep.PerQueue) != 4 {
		t.Fatalf("queue breakdown missing: count %d, %d entries", rep.QueueCount, len(rep.PerQueue))
	}
	var steered, received uint64
	active := 0
	for _, qr := range rep.PerQueue {
		steered += qr.Steered
		received += qr.Received
		if qr.Steered > 0 {
			active++
			if qr.AchievedMpps <= 0 {
				t.Errorf("queue %d served traffic at %.2f Mpps", qr.Queue, qr.AchievedMpps)
			}
		}
	}
	if steered != rep.Sent {
		t.Errorf("steered %d of %d sent", steered, rep.Sent)
	}
	if active < 2 {
		t.Errorf("1024 flows collapsed onto %d queue(s)", active)
	}
	if received != rep.Received || rep.Received != count || rep.Lost != 0 {
		t.Errorf("accounting: received %d (per-queue %d), lost %d, want %d clean", rep.Received, received, rep.Lost, count)
	}
	if rep.MergeConflicts != 0 {
		t.Errorf("%d merge conflicts on flow-pinned traffic", rep.MergeConflicts)
	}
	if rep.Actions[ebpf.XDPTx] != count {
		t.Errorf("actions = %v, want %d XDP_TX", rep.Actions, count)
	}
	if rep.AvgLatencyNs <= 0 || rep.MaxLatencyNs < rep.AvgLatencyNs {
		t.Errorf("latency accounting broken: avg %.0f ns, max %.0f ns", rep.AvgLatencyNs, rep.MaxLatencyNs)
	}

	// The merged host view must account for every packet: the toy app
	// counts IPv4 frames in stats[1].
	stats, ok := sh.Maps().ByName("stats")
	if !ok {
		t.Fatal("no stats map")
	}
	v, ok := stats.Lookup([]byte{1, 0, 0, 0})
	if !ok {
		t.Fatal("stats[1] missing")
	}
	if got := binary.LittleEndian.Uint64(v); got != count {
		t.Errorf("merged counter %d, want %d", got, count)
	}
}

// TestMultiQueueSpeedup is the scale-out headline in simulated time: a
// single 250 MHz pipeline saturates at 250 Mpps, so at 750 Mpps offered
// it drops and achieves a third of the load, while four replicas split
// the same stream into per-queue rates they sustain cleanly. The
// speedup is measured in simulated cycles, so it holds on any host —
// including the single-CPU CI runner.
func TestMultiQueueSpeedup(t *testing.T) {
	const count = 6000
	const offered = 750e6
	run := func(queues int) Report {
		sh := newShell(t, apps.Toy(), core.Options{}, ShellConfig{Queues: queues, Sim: hwsim.Config{InputQueuePackets: 64}})
		gen := pktgen.NewGenerator(apps.Toy().Traffic)
		rep, err := sh.RunLoad(gen.Next, count, offered)
		if err != nil {
			t.Fatalf("%d queues: %v", queues, err)
		}
		return rep
	}
	single := run(1)
	quad := run(4)
	if single.Lost == 0 {
		t.Error("a single queue should overflow at 3x its line rate")
	}
	if quad.Lost != 0 {
		t.Errorf("4 queues lost %d packets at a quarter of the per-queue load", quad.Lost)
	}
	if speedup := quad.AchievedMpps / single.AchievedMpps; speedup < 2.5 {
		t.Errorf("speedup %.2fx (%.0f vs %.0f Mpps), want >= 2.5x",
			speedup, quad.AchievedMpps, single.AchievedMpps)
	}
}

// TestMultiQueueUpdateSwap: a scheduled live update on a multi-queue
// shell drains every replica, migrates the merged state into the new
// banks and swaps the fleet atomically — and the per-flow counters keep
// counting across the swap without losing a packet.
func TestMultiQueueUpdateSwap(t *testing.T) {
	const count = 1200
	app := apps.Toy()
	sh := newShell(t, app, core.Options{}, ShellConfig{Queues: 4, Sim: hwsim.Config{InputQueuePackets: 64}})
	prog, err := app.Program()
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.ScheduleUpdate(count/2, liveupdate.Config{Prog: prog, Setup: app.SetupHost}); err != nil {
		t.Fatal(err)
	}
	gen := pktgen.NewGenerator(app.Traffic)
	rep, err := sh.RunLoad(gen.Next, count, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UpdatesAttempted != 1 || rep.UpdatesCompleted != 1 {
		t.Fatalf("update attempted %d completed %d, want 1/1", rep.UpdatesAttempted, rep.UpdatesCompleted)
	}
	if rep.UpdateStage != liveupdate.StageDone.String() {
		t.Errorf("update stage %q, want done", rep.UpdateStage)
	}
	if rep.MigratedEntries == 0 {
		t.Error("swap migrated no map state")
	}
	if rep.Received != rep.Sent || rep.Lost != 0 {
		t.Errorf("update dropped traffic: received %d of %d, lost %d", rep.Received, rep.Sent, rep.Lost)
	}
	stats, _ := sh.Maps().ByName("stats")
	v, ok := stats.Lookup([]byte{1, 0, 0, 0})
	if !ok {
		t.Fatal("stats[1] missing after swap")
	}
	if got := binary.LittleEndian.Uint64(v); got != uint64(count) {
		t.Errorf("counter across swap = %d, want %d (migrated + post-swap)", got, count)
	}
}

// TestMultiQueueUpdateRollback: a failing update (its host setup
// errors) must roll back to the old replica fleet with state intact and
// keep serving every packet.
func TestMultiQueueUpdateRollback(t *testing.T) {
	const count = 1000
	app := apps.Toy()
	sh := newShell(t, app, core.Options{}, ShellConfig{Queues: 2, Sim: hwsim.Config{InputQueuePackets: 64}})
	old := sh.Engine()
	prog, err := app.Program()
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("setup refused")
	ucfg := liveupdate.Config{Prog: prog, Setup: func(*maps.Set) error { return boom }}
	if err := sh.ScheduleUpdate(count/2, ucfg); err != nil {
		t.Fatal(err)
	}
	gen := pktgen.NewGenerator(app.Traffic)
	rep, err := sh.RunLoad(gen.Next, count, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UpdatesAttempted != 1 || rep.UpdatesRolledBack != 1 || rep.UpdatesCompleted != 0 {
		t.Fatalf("attempted %d rolled back %d completed %d, want 1/1/0",
			rep.UpdatesAttempted, rep.UpdatesRolledBack, rep.UpdatesCompleted)
	}
	if rep.UpdateStage != liveupdate.StageRolledBack.String() {
		t.Errorf("update stage %q, want rolled back", rep.UpdateStage)
	}
	if rep.UpdateFailure == "" {
		t.Error("rollback recorded no failure cause")
	}
	if sh.Engine() != old {
		t.Error("rollback did not keep the old replica fleet serving")
	}
	if rep.Received != rep.Sent {
		t.Errorf("rollback dropped traffic: %d of %d", rep.Received, rep.Sent)
	}
	stats, _ := sh.Maps().ByName("stats")
	v, ok := stats.Lookup([]byte{1, 0, 0, 0})
	if !ok {
		t.Fatal("stats[1] missing after rollback")
	}
	if got := binary.LittleEndian.Uint64(v); got != uint64(count) {
		t.Errorf("counter after rollback = %d, want %d", got, count)
	}
}

// TestMultiQueueChaos runs the shell-side fault classes through the
// dispatcher: damaged frames take the queue-0 fallback, overflow bursts
// pile onto shared arrival cycles, and the books still balance.
func TestMultiQueueChaos(t *testing.T) {
	const count = 1500
	cfg := ShellConfig{
		Queues: 4,
		Faults: faults.Config{Seed: 7, MalformRate: 0.05, OverflowRate: 0.01, OverflowBurstLen: 8},
		Sim: hwsim.Config{InputQueuePackets: 64},
	}
	sh := newShell(t, apps.Toy(), core.Options{}, cfg)
	gen := pktgen.NewGenerator(apps.Toy().Traffic)
	rep, err := sh.RunLoad(gen.Next, count, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MalformedSent == 0 {
		t.Error("chaos profile injected no malformed frames")
	}
	if rep.OverflowBursts == 0 || rep.Sent <= count {
		t.Errorf("no overflow bursts landed: %d bursts, %d sent", rep.OverflowBursts, rep.Sent)
	}
	if rep.SteerFallbacks == 0 {
		t.Error("no damaged frame took the queue-0 fallback")
	}
	// Malformed frames still complete (the hardware forces a drop
	// verdict), so they sit inside Received, not next to it.
	if got := rep.Received + rep.Lost; got != rep.Sent {
		t.Errorf("accounting: %d received + %d lost != %d sent", rep.Received, rep.Lost, rep.Sent)
	}
	if rep.MalformedDropped == 0 {
		t.Error("no malformed frame was bounds-checked into a drop")
	}
}
