package nic

import (
	"encoding/binary"
	"errors"
	"testing"

	"ehdl/internal/apps"
	"ehdl/internal/conformance"
	"ehdl/internal/core"
	"ehdl/internal/ebpf"
	"ehdl/internal/faults"
	"ehdl/internal/hwsim"
	"ehdl/internal/liveupdate"
	"ehdl/internal/maps"
	"ehdl/internal/pktgen"
)

func TestMultiQueueRunLoad(t *testing.T) {
	const count = 2000
	sh := newShell(t, apps.Toy(), core.Options{}, ShellConfig{Queues: 4, Sim: hwsim.Config{InputQueuePackets: 64}})
	if sh.Sim() != nil {
		t.Fatal("multi-queue shell should not expose a single simulator")
	}
	if sh.Engine() == nil || sh.Engine().Queues() != 4 {
		t.Fatal("multi-queue shell should expose a 4-replica engine")
	}
	gen := pktgen.NewGenerator(apps.Toy().Traffic)
	rep, err := sh.RunLoad(gen.Next, count, sh.LineRateMpps(64)*1e6)
	if err != nil {
		t.Fatal(err)
	}

	if rep.QueueCount != 4 || len(rep.PerQueue) != 4 {
		t.Fatalf("queue breakdown missing: count %d, %d entries", rep.QueueCount, len(rep.PerQueue))
	}
	var steered, received uint64
	active := 0
	for _, qr := range rep.PerQueue {
		steered += qr.Steered
		received += qr.Received
		if qr.Steered > 0 {
			active++
			if qr.AchievedMpps <= 0 {
				t.Errorf("queue %d served traffic at %.2f Mpps", qr.Queue, qr.AchievedMpps)
			}
		}
	}
	if steered != rep.Sent {
		t.Errorf("steered %d of %d sent", steered, rep.Sent)
	}
	if active < 2 {
		t.Errorf("1024 flows collapsed onto %d queue(s)", active)
	}
	if received != rep.Received || rep.Received != count || rep.Lost != 0 {
		t.Errorf("accounting: received %d (per-queue %d), lost %d, want %d clean", rep.Received, received, rep.Lost, count)
	}
	if rep.MergeConflicts != 0 {
		t.Errorf("%d merge conflicts on flow-pinned traffic", rep.MergeConflicts)
	}
	if rep.Actions[ebpf.XDPTx] != count {
		t.Errorf("actions = %v, want %d XDP_TX", rep.Actions, count)
	}
	if rep.AvgLatencyNs <= 0 || rep.MaxLatencyNs < rep.AvgLatencyNs {
		t.Errorf("latency accounting broken: avg %.0f ns, max %.0f ns", rep.AvgLatencyNs, rep.MaxLatencyNs)
	}

	// The merged host view must account for every packet: the toy app
	// counts IPv4 frames in stats[1].
	stats, ok := sh.Maps().ByName("stats")
	if !ok {
		t.Fatal("no stats map")
	}
	v, ok := stats.Lookup([]byte{1, 0, 0, 0})
	if !ok {
		t.Fatal("stats[1] missing")
	}
	if got := binary.LittleEndian.Uint64(v); got != count {
		t.Errorf("merged counter %d, want %d", got, count)
	}
}

// TestMultiQueueSpeedup is the scale-out headline in simulated time: a
// single 250 MHz pipeline saturates at 250 Mpps, so at 750 Mpps offered
// it drops and achieves a third of the load, while four replicas split
// the same stream into per-queue rates they sustain cleanly. The
// speedup is measured in simulated cycles, so it holds on any host —
// including the single-CPU CI runner.
func TestMultiQueueSpeedup(t *testing.T) {
	const count = 6000
	const offered = 750e6
	run := func(queues int) Report {
		sh := newShell(t, apps.Toy(), core.Options{}, ShellConfig{Queues: queues, Sim: hwsim.Config{InputQueuePackets: 64}})
		gen := pktgen.NewGenerator(apps.Toy().Traffic)
		rep, err := sh.RunLoad(gen.Next, count, offered)
		if err != nil {
			t.Fatalf("%d queues: %v", queues, err)
		}
		return rep
	}
	single := run(1)
	quad := run(4)
	if single.Lost == 0 {
		t.Error("a single queue should overflow at 3x its line rate")
	}
	if quad.Lost != 0 {
		t.Errorf("4 queues lost %d packets at a quarter of the per-queue load", quad.Lost)
	}
	if speedup := quad.AchievedMpps / single.AchievedMpps; speedup < 2.5 {
		t.Errorf("speedup %.2fx (%.0f vs %.0f Mpps), want >= 2.5x",
			speedup, quad.AchievedMpps, single.AchievedMpps)
	}
}

// TestMultiQueueUpdateSwap: a scheduled live update on a multi-queue
// shell drains every replica, migrates the merged state into the new
// banks and swaps the fleet atomically — and the per-flow counters keep
// counting across the swap without losing a packet.
func TestMultiQueueUpdateSwap(t *testing.T) {
	const count = 1200
	app := apps.Toy()
	sh := newShell(t, app, core.Options{}, ShellConfig{Queues: 4, Sim: hwsim.Config{InputQueuePackets: 64}})
	prog, err := app.Program()
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.ScheduleUpdate(count/2, liveupdate.Config{Prog: prog, Setup: app.SetupHost}); err != nil {
		t.Fatal(err)
	}
	gen := pktgen.NewGenerator(app.Traffic)
	rep, err := sh.RunLoad(gen.Next, count, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UpdatesAttempted != 1 || rep.UpdatesCompleted != 1 {
		t.Fatalf("update attempted %d completed %d, want 1/1", rep.UpdatesAttempted, rep.UpdatesCompleted)
	}
	if rep.UpdateStage != liveupdate.StageDone.String() {
		t.Errorf("update stage %q, want done", rep.UpdateStage)
	}
	if rep.MigratedEntries == 0 {
		t.Error("swap migrated no map state")
	}
	if rep.Received != rep.Sent || rep.Lost != 0 {
		t.Errorf("update dropped traffic: received %d of %d, lost %d", rep.Received, rep.Sent, rep.Lost)
	}
	stats, _ := sh.Maps().ByName("stats")
	v, ok := stats.Lookup([]byte{1, 0, 0, 0})
	if !ok {
		t.Fatal("stats[1] missing after swap")
	}
	if got := binary.LittleEndian.Uint64(v); got != uint64(count) {
		t.Errorf("counter across swap = %d, want %d (migrated + post-swap)", got, count)
	}
}

// TestMultiQueueUpdateRollback: a failing update (its host setup
// errors) must roll back to the old replica fleet with state intact and
// keep serving every packet.
func TestMultiQueueUpdateRollback(t *testing.T) {
	const count = 1000
	app := apps.Toy()
	sh := newShell(t, app, core.Options{}, ShellConfig{Queues: 2, Sim: hwsim.Config{InputQueuePackets: 64}})
	old := sh.Engine()
	prog, err := app.Program()
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("setup refused")
	ucfg := liveupdate.Config{Prog: prog, Setup: func(*maps.Set) error { return boom }}
	if err := sh.ScheduleUpdate(count/2, ucfg); err != nil {
		t.Fatal(err)
	}
	gen := pktgen.NewGenerator(app.Traffic)
	rep, err := sh.RunLoad(gen.Next, count, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UpdatesAttempted != 1 || rep.UpdatesRolledBack != 1 || rep.UpdatesCompleted != 0 {
		t.Fatalf("attempted %d rolled back %d completed %d, want 1/1/0",
			rep.UpdatesAttempted, rep.UpdatesRolledBack, rep.UpdatesCompleted)
	}
	if rep.UpdateStage != liveupdate.StageRolledBack.String() {
		t.Errorf("update stage %q, want rolled back", rep.UpdateStage)
	}
	if rep.UpdateFailure == "" {
		t.Error("rollback recorded no failure cause")
	}
	if sh.Engine() != old {
		t.Error("rollback did not keep the old replica fleet serving")
	}
	if rep.Received != rep.Sent {
		t.Errorf("rollback dropped traffic: %d of %d", rep.Received, rep.Sent)
	}
	stats, _ := sh.Maps().ByName("stats")
	v, ok := stats.Lookup([]byte{1, 0, 0, 0})
	if !ok {
		t.Fatal("stats[1] missing after rollback")
	}
	if got := binary.LittleEndian.Uint64(v); got != uint64(count) {
		t.Errorf("counter after rollback = %d, want %d", got, count)
	}
}

// flowcountSource counts packets per source IP in a small hash map the
// data plane itself populates — so a live run carries inserted state an
// update must migrate into the new banks.
const flowcountSource = `
map flows hash key=4 value=8 entries=8

r2 = *(u32 *)(r1 + 4)        ; data_end
r1 = *(u32 *)(r1 + 0)        ; data
r3 = r1
r3 += 34                     ; eth(14) + ip(20)
if r3 > r2 goto pass         ; bounds check (hardware-elided)
r4 = *(u32 *)(r1 + 26)       ; src ip (raw byte order)
*(u32 *)(r10 - 4) = r4
r1 = map[flows] ll
r2 = r10
r2 += -4
call 1                       ; bpf_map_lookup_elem
if r0 == 0 goto insert
r2 = 1
lock *(u64 *)(r0 + 0) += r2
r0 = 3                       ; XDP_TX
exit
insert:
*(u64 *)(r10 - 16) = 1
r1 = map[flows] ll
r2 = r10
r2 += -4
r3 = r10
r3 += -16
r4 = 0
call 2                       ; bpf_map_update_elem
r0 = 3
exit
pass:
r0 = 2                       ; XDP_PASS
exit
`

func flowcountApp() *apps.App {
	return &apps.App{
		Name:    "flowcount",
		Source:  flowcountSource,
		Traffic: pktgen.GeneratorConfig{Flows: 4, PacketLen: 64},
	}
}

// TestMultiQueueMigrateFullRollback forces the failure in the middle of
// the state migration itself, after the schema gate has passed: the new
// engine's host setup fills the hash map to capacity with keys no
// generated flow can collide with (the generator sources from
// 10.0.0.0/8), so the merged-state bulk copy hits a full map on its
// first live entry. The swap must roll back with the old replica fleet
// still serving and the merged map state bit-identical to a run that
// never attempted the update.
func TestMultiQueueMigrateFullRollback(t *testing.T) {
	const count = 1000
	app := flowcountApp()

	run := func(update bool) (*Shell, Report) {
		t.Helper()
		sh := newShell(t, app, core.Options{}, ShellConfig{Queues: 4, Sim: hwsim.Config{InputQueuePackets: 64}})
		if update {
			prog, err := app.Program()
			if err != nil {
				t.Fatal(err)
			}
			prefill := func(set *maps.Set) error {
				m, ok := set.ByName("flows")
				if !ok {
					return errors.New("flows map missing in new engine")
				}
				for i := 0; i < 8; i++ {
					key := []byte{0xff, 0xff, 0xff, byte(i)}
					if err := m.Update(key, make([]byte, 8), maps.UpdateAny); err != nil {
						return err
					}
				}
				return nil
			}
			ucfg := liveupdate.Config{Prog: prog, Setup: prefill}
			if err := sh.ScheduleUpdate(count/2, ucfg); err != nil {
				t.Fatal(err)
			}
		}
		gen := pktgen.NewGenerator(app.Traffic)
		rep, err := sh.RunLoad(gen.Next, count, 100e6)
		if err != nil {
			t.Fatal(err)
		}
		return sh, rep
	}

	shA, repA := run(true)
	if repA.UpdatesAttempted != 1 || repA.UpdatesRolledBack != 1 || repA.UpdatesCompleted != 0 {
		t.Fatalf("attempted %d rolled back %d completed %d, want 1/1/0",
			repA.UpdatesAttempted, repA.UpdatesRolledBack, repA.UpdatesCompleted)
	}
	if repA.UpdateStage != liveupdate.StageRolledBack.String() {
		t.Errorf("update stage %q, want rolled back", repA.UpdateStage)
	}
	if repA.UpdateFailure == "" {
		t.Error("mid-migration rollback recorded no failure cause")
	}
	if shA.Engine() == nil || shA.Engine().Queues() != 4 {
		t.Error("rollback did not keep a 4-replica engine serving")
	}
	if repA.Received != repA.Sent || repA.Lost != 0 {
		t.Errorf("rollback dropped traffic: received %d of %d, lost %d",
			repA.Received, repA.Sent, repA.Lost)
	}

	// The books after the failed update are bit-identical to a run that
	// never scheduled one: migration writes only touched the discarded
	// new banks, never the serving state.
	shB, repB := run(false)
	if repA.Received != repB.Received {
		t.Errorf("rollback run received %d, clean run %d", repA.Received, repB.Received)
	}
	if err := conformance.CompareMaps(shB.Maps(), shA.Maps()); err != nil {
		t.Errorf("merged map state diverged from the no-update run: %v", err)
	}
	// The prefill keys must not have leaked into the serving state.
	flows, ok := shA.Maps().ByName("flows")
	if !ok {
		t.Fatal("flows map missing after rollback")
	}
	if _, found := flows.Lookup([]byte{0xff, 0xff, 0xff, 0}); found {
		t.Error("a discarded new-bank key leaked into the serving map")
	}
	if flows.Len() != 4 {
		t.Errorf("serving map holds %d flows, want the generator's 4", flows.Len())
	}
}

// TestMultiQueueChaos runs the shell-side fault classes through the
// dispatcher: damaged frames take the queue-0 fallback, overflow bursts
// pile onto shared arrival cycles, and the books still balance.
func TestMultiQueueChaos(t *testing.T) {
	const count = 1500
	cfg := ShellConfig{
		Queues: 4,
		Faults: faults.Config{Seed: 7, MalformRate: 0.05, OverflowRate: 0.01, OverflowBurstLen: 8},
		Sim: hwsim.Config{InputQueuePackets: 64},
	}
	sh := newShell(t, apps.Toy(), core.Options{}, cfg)
	gen := pktgen.NewGenerator(apps.Toy().Traffic)
	rep, err := sh.RunLoad(gen.Next, count, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MalformedSent == 0 {
		t.Error("chaos profile injected no malformed frames")
	}
	if rep.OverflowBursts == 0 || rep.Sent <= count {
		t.Errorf("no overflow bursts landed: %d bursts, %d sent", rep.OverflowBursts, rep.Sent)
	}
	if rep.SteerFallbacks == 0 {
		t.Error("no damaged frame took the queue-0 fallback")
	}
	// Malformed frames still complete (the hardware forces a drop
	// verdict), so they sit inside Received, not next to it.
	if got := rep.Received + rep.Lost; got != rep.Sent {
		t.Errorf("accounting: %d received + %d lost != %d sent", rep.Received, rep.Lost, rep.Sent)
	}
	if rep.MalformedDropped == 0 {
		t.Error("no malformed frame was bounds-checked into a drop")
	}
}
