package nic

import (
	"encoding/json"
	"testing"

	"ehdl/internal/ebpf"
)

// TestReportAdd exercises every aggregation class: plain counter sums
// (traffic, queue, recovery, update, steer-fallback and merge-conflict
// counters), capacity-summed rates, weighted latency means, max-folded
// worst cases and first-non-empty update strings.
func TestReportAdd(t *testing.T) {
	a := Report{
		OfferedMpps:  100,
		AchievedMpps: 90,
		Sent:         1000,
		Received:     900,
		Lost:         100,
		AvgLatencyNs: 1000,
		MaxLatencyNs: 5000,
		Flushes:      10,
		Cycles:       4000,
		Actions:      map[ebpf.XDPAction]uint64{ebpf.XDPTx: 900},

		QueueOverflows: 3,
		OverflowBursts: 2,
		WatchdogTrips:  1,

		Recoveries:            2,
		RecoveryAborted:       5,
		RecoveryBackoffCycles: 512,
		CheckpointsTaken:      4,

		UpdatesAttempted:  1,
		UpdatesCompleted:  1,
		UpdateStage:       "done",
		MigratedEntries:   64,
		CanariedPackets:   32,
		CanaryDivergences: 0,

		QueueCount:     4,
		PerQueue:       []QueueReport{{Queue: 0, Received: 450}, {Queue: 1, Received: 450}},
		SteerFallbacks: 7,
		MergeConflicts: 0,
	}
	b := Report{
		OfferedMpps:  100,
		AchievedMpps: 80,
		Sent:         500,
		Received:     300,
		Lost:         200,
		AvgLatencyNs: 2000,
		MaxLatencyNs: 4000,
		Flushes:      30,
		Cycles:       8000,
		Actions:      map[ebpf.XDPAction]uint64{ebpf.XDPTx: 200, ebpf.XDPDrop: 100},

		QueueOverflows: 1,
		OverflowBursts: 1,
		WatchdogTrips:  2,

		Recoveries:            3,
		RecoveryAborted:       7,
		RecoveryBackoffCycles: 1024,
		CheckpointsTaken:      1,

		UpdatesAttempted:  1,
		UpdatesRolledBack: 1,
		UpdateStage:       "rolled-back",
		UpdateFailure:     "migrate: map full",
		CanariedPackets:   8,
		CanaryDivergences: 1,

		QueueCount:     2,
		PerQueue:       []QueueReport{{Queue: 0, Received: 300}},
		SteerFallbacks: 3,
		MergeConflicts: 2,
	}

	sum := a
	sum.Actions = map[ebpf.XDPAction]uint64{ebpf.XDPTx: 900}
	sum.PerQueue = append([]QueueReport(nil), a.PerQueue...)
	sum.Add(b)

	// Traffic and queue counters.
	if sum.Sent != 1500 || sum.Received != 1200 || sum.Lost != 300 {
		t.Errorf("traffic sums: sent %d received %d lost %d", sum.Sent, sum.Received, sum.Lost)
	}
	if sum.QueueOverflows != 4 || sum.OverflowBursts != 3 || sum.WatchdogTrips != 3 {
		t.Errorf("queue counters: %d/%d/%d", sum.QueueOverflows, sum.OverflowBursts, sum.WatchdogTrips)
	}
	// Recovery counters.
	if sum.Recoveries != 5 || sum.RecoveryAborted != 12 || sum.RecoveryBackoffCycles != 1536 || sum.CheckpointsTaken != 5 {
		t.Errorf("recovery counters: %d/%d/%d/%d",
			sum.Recoveries, sum.RecoveryAborted, sum.RecoveryBackoffCycles, sum.CheckpointsTaken)
	}
	// Update counters and first-non-empty strings.
	if sum.UpdatesAttempted != 2 || sum.UpdatesCompleted != 1 || sum.UpdatesRolledBack != 1 {
		t.Errorf("update outcomes: %d/%d/%d", sum.UpdatesAttempted, sum.UpdatesCompleted, sum.UpdatesRolledBack)
	}
	if sum.UpdateStage != "done" {
		t.Errorf("UpdateStage %q, want first non-empty \"done\"", sum.UpdateStage)
	}
	if sum.UpdateFailure != "migrate: map full" {
		t.Errorf("UpdateFailure %q, want carried from second report", sum.UpdateFailure)
	}
	if sum.MigratedEntries != 64 || sum.CanariedPackets != 40 || sum.CanaryDivergences != 1 {
		t.Errorf("migration/canary: %d/%d/%d", sum.MigratedEntries, sum.CanariedPackets, sum.CanaryDivergences)
	}
	// Steer fallback and merge conflict counters.
	if sum.SteerFallbacks != 10 || sum.MergeConflicts != 2 {
		t.Errorf("steer/merge: %d/%d", sum.SteerFallbacks, sum.MergeConflicts)
	}
	// Multi-queue breakdown: QueueCount max-folds (the widest replica
	// set, not a double count of the same replicas across epochs) and
	// PerQueue merges by queue index.
	if sum.QueueCount != 4 || len(sum.PerQueue) != 2 {
		t.Errorf("queue breakdown: count %d, %d entries", sum.QueueCount, len(sum.PerQueue))
	}
	if sum.PerQueue[0].Queue != 0 || sum.PerQueue[0].Received != 750 {
		t.Errorf("queue 0 merged to %+v, want Received 750", sum.PerQueue[0])
	}
	if sum.PerQueue[1].Queue != 1 || sum.PerQueue[1].Received != 450 {
		t.Errorf("queue 1 merged to %+v, want Received 450", sum.PerQueue[1])
	}
	// Rates sum; latency means weight by Received; maxes fold.
	if sum.OfferedMpps != 200 || sum.AchievedMpps != 170 {
		t.Errorf("rates: offered %.0f achieved %.0f", sum.OfferedMpps, sum.AchievedMpps)
	}
	wantAvg := (1000.0*900 + 2000.0*300) / 1200.0
	if sum.AvgLatencyNs != wantAvg {
		t.Errorf("AvgLatencyNs %.2f, want Received-weighted %.2f", sum.AvgLatencyNs, wantAvg)
	}
	if sum.MaxLatencyNs != 5000 {
		t.Errorf("MaxLatencyNs %.0f, want max 5000", sum.MaxLatencyNs)
	}
	// Actions merge.
	if sum.Actions[ebpf.XDPTx] != 1100 || sum.Actions[ebpf.XDPDrop] != 100 {
		t.Errorf("actions merged to %v", sum.Actions)
	}
}

// TestReportAddPerTenant: tenant slices merge by name — the same
// tenant's ledger stays one row across epoch folds and fleet
// aggregation — and every slice counter sums while the latency mean
// stays Received-weighted.
func TestReportAddPerTenant(t *testing.T) {
	a := Report{
		Sent: 100, Received: 90, Lost: 4, Throttled: 3, Quarantined: 2, TenantDownLoss: 1,
		PerTenant: []TenantSlice{
			{Name: "alpha", VLAN: 100, Steered: 60, Admitted: 57, Throttled: 3,
				Sent: 57, Received: 55, Lost: 2, AvgLatencyNs: 100, AchievedMpps: 1,
				Actions: map[ebpf.XDPAction]uint64{ebpf.XDPTx: 55}},
			{Name: "beta", VLAN: 200, Steered: 40, Admitted: 40,
				Sent: 43, Received: 35, Lost: 8, AvgLatencyNs: 200},
		},
	}
	b := Report{
		Sent: 50, Received: 40, Lost: 5, Throttled: 5,
		PerTenant: []TenantSlice{
			{Name: "alpha", Steered: 50, Admitted: 45, Throttled: 5,
				Sent: 45, Received: 45, AvgLatencyNs: 300, AchievedMpps: 2,
				Actions: map[ebpf.XDPAction]uint64{ebpf.XDPTx: 40, ebpf.XDPDrop: 5}},
			{Name: "gamma", VLAN: 300, Steered: 7, Admitted: 7, Sent: 7, Received: 7},
		},
	}
	sum := a
	sum.PerTenant = append([]TenantSlice(nil), a.PerTenant...)
	sum.PerTenant[0].Actions = map[ebpf.XDPAction]uint64{ebpf.XDPTx: 55}
	sum.Add(b)

	if sum.Throttled != 8 || sum.Quarantined != 2 || sum.TenantDownLoss != 1 {
		t.Errorf("tenant loss counters: throttled %d quarantined %d down %d",
			sum.Throttled, sum.Quarantined, sum.TenantDownLoss)
	}
	if len(sum.PerTenant) != 3 {
		t.Fatalf("PerTenant merged to %d rows, want 3 (alpha folded, gamma appended)", len(sum.PerTenant))
	}
	al := sum.PerTenant[0]
	if al.Name != "alpha" || al.Steered != 110 || al.Admitted != 102 || al.Throttled != 8 ||
		al.Sent != 102 || al.Received != 100 || al.Lost != 2 || al.AchievedMpps != 3 {
		t.Errorf("alpha merged to %+v", al)
	}
	wantAvg := (100.0*55 + 300.0*45) / 100.0
	if al.AvgLatencyNs != wantAvg {
		t.Errorf("alpha AvgLatencyNs %.2f, want Received-weighted %.2f", al.AvgLatencyNs, wantAvg)
	}
	if al.Actions[ebpf.XDPTx] != 95 || al.Actions[ebpf.XDPDrop] != 5 {
		t.Errorf("alpha actions merged to %v", al.Actions)
	}
	if sum.PerTenant[2].Name != "gamma" || sum.PerTenant[2].VLAN != 300 {
		t.Errorf("gamma appended as %+v", sum.PerTenant[2])
	}
	// Appended slices are deep copies: mutating the merged report must
	// not reach back into the source report's action map.
	sum.PerTenant[2].Actions = nil
	al.Actions[ebpf.XDPTx] = 0
	if b.PerTenant[0].Actions[ebpf.XDPTx] != 40 {
		t.Errorf("merge aliased the source action map: %v", b.PerTenant[0].Actions)
	}
}

// TestReportAccounted is the table test for the ledger identity: every
// offered frame lands in exactly one of Received, Lost, Throttled,
// Quarantined or TenantDownLoss, and because the identity is additive
// it survives Add-merges of reports that each individually satisfy it.
func TestReportAccounted(t *testing.T) {
	cases := []struct {
		name string
		r    Report
		want bool
	}{
		{"zero", Report{}, true},
		{"plain shell", Report{Sent: 100, Received: 98, Lost: 2}, true},
		{"tenant ledger", Report{Sent: 100, Received: 80, Lost: 5, Throttled: 10, Quarantined: 3, TenantDownLoss: 2}, true},
		{"lost frame unaccounted", Report{Sent: 100, Received: 98, Lost: 1}, false},
		{"double counted", Report{Sent: 100, Received: 98, Lost: 2, Throttled: 2}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.r.Accounted(); got != tc.want {
				t.Errorf("Accounted() = %v, want %v for %+v", got, tc.want, tc.r)
			}
		})
	}

	// Additivity across merges: fold several accounted epochs from
	// different loss classes and the identity must still hold; fold one
	// unaccounted epoch in and it must break.
	epochs := []Report{
		{Sent: 256, Received: 250, Lost: 6},
		{Sent: 256, Received: 200, Lost: 0, Throttled: 56},
		{Sent: 256, Received: 100, Lost: 12, Throttled: 40, Quarantined: 24, TenantDownLoss: 80},
		{Sent: 0},
	}
	var sum Report
	for i, ep := range epochs {
		if !ep.Accounted() {
			t.Fatalf("epoch %d not individually accounted: %+v", i, ep)
		}
		sum.Add(ep)
		if !sum.Accounted() {
			t.Errorf("ledger identity broken after folding epoch %d: %+v", i, sum)
		}
	}
	if sum.Sent != 768 || sum.Received != 550 || sum.Lost != 18 ||
		sum.Throttled != 96 || sum.Quarantined != 24 || sum.TenantDownLoss != 80 {
		t.Errorf("merged ledger: %+v", sum)
	}
	sum.Add(Report{Sent: 10, Received: 3})
	if sum.Accounted() {
		t.Error("ledger identity survived folding an unaccounted report")
	}
}

// TestReportAddZero: folding a zero Report changes nothing — the
// identity the fleet loop relies on when a device sat out an epoch.
func TestReportAddZero(t *testing.T) {
	r := Report{Sent: 10, Received: 9, Lost: 1, AvgLatencyNs: 100, MaxLatencyNs: 200,
		UpdateStage: "done", QueueCount: 1}
	want := r
	r.Add(Report{})
	if r.Sent != want.Sent || r.Received != want.Received || r.Lost != want.Lost ||
		r.AvgLatencyNs != want.AvgLatencyNs || r.MaxLatencyNs != want.MaxLatencyNs ||
		r.UpdateStage != want.UpdateStage || r.QueueCount != want.QueueCount {
		t.Errorf("adding zero report mutated aggregate: %+v -> %+v", want, r)
	}
	var z Report
	z.Add(want)
	if z.Sent != want.Sent || z.AvgLatencyNs != want.AvgLatencyNs || z.UpdateStage != "done" {
		t.Errorf("zero + r != r: %+v", z)
	}
}

// TestReportJSONByteStable: the fleet's byte-identical chaos and
// recovery gates hash report JSON, so a report with a populated verdict
// histogram (a Go map) must marshal identically every time —
// encoding/json's sorted map keys are the guarantee this pins.
func TestReportJSONByteStable(t *testing.T) {
	rep := Report{
		Sent: 10, Received: 9, Lost: 1,
		Actions: map[ebpf.XDPAction]uint64{
			ebpf.XDPPass: 3, ebpf.XDPDrop: 2, ebpf.XDPTx: 2,
			ebpf.XDPAborted: 1, ebpf.XDPRedirect: 1,
		},
		PerQueue:  []QueueReport{{Queue: 0, Received: 5}, {Queue: 1, Received: 4}},
		PerTenant: []TenantSlice{{Name: "b", Received: 4}, {Name: "a", Received: 5}},
	}
	first, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		again, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if string(again) != string(first) {
			t.Fatalf("marshal %d diverged:\n%s\n%s", i, first, again)
		}
	}
}
