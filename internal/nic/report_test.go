package nic

import (
	"testing"

	"ehdl/internal/ebpf"
)

// TestReportAdd exercises every aggregation class: plain counter sums
// (traffic, queue, recovery, update, steer-fallback and merge-conflict
// counters), capacity-summed rates, weighted latency means, max-folded
// worst cases and first-non-empty update strings.
func TestReportAdd(t *testing.T) {
	a := Report{
		OfferedMpps:  100,
		AchievedMpps: 90,
		Sent:         1000,
		Received:     900,
		Lost:         100,
		AvgLatencyNs: 1000,
		MaxLatencyNs: 5000,
		Flushes:      10,
		Cycles:       4000,
		Actions:      map[ebpf.XDPAction]uint64{ebpf.XDPTx: 900},

		QueueOverflows: 3,
		OverflowBursts: 2,
		WatchdogTrips:  1,

		Recoveries:            2,
		RecoveryAborted:       5,
		RecoveryBackoffCycles: 512,
		CheckpointsTaken:      4,

		UpdatesAttempted:  1,
		UpdatesCompleted:  1,
		UpdateStage:       "done",
		MigratedEntries:   64,
		CanariedPackets:   32,
		CanaryDivergences: 0,

		QueueCount:     4,
		PerQueue:       []QueueReport{{Queue: 0, Received: 450}, {Queue: 1, Received: 450}},
		SteerFallbacks: 7,
		MergeConflicts: 0,
	}
	b := Report{
		OfferedMpps:  100,
		AchievedMpps: 80,
		Sent:         500,
		Received:     300,
		Lost:         200,
		AvgLatencyNs: 2000,
		MaxLatencyNs: 4000,
		Flushes:      30,
		Cycles:       8000,
		Actions:      map[ebpf.XDPAction]uint64{ebpf.XDPTx: 200, ebpf.XDPDrop: 100},

		QueueOverflows: 1,
		OverflowBursts: 1,
		WatchdogTrips:  2,

		Recoveries:            3,
		RecoveryAborted:       7,
		RecoveryBackoffCycles: 1024,
		CheckpointsTaken:      1,

		UpdatesAttempted:  1,
		UpdatesRolledBack: 1,
		UpdateStage:       "rolled-back",
		UpdateFailure:     "migrate: map full",
		CanariedPackets:   8,
		CanaryDivergences: 1,

		QueueCount:     2,
		PerQueue:       []QueueReport{{Queue: 0, Received: 300}},
		SteerFallbacks: 3,
		MergeConflicts: 2,
	}

	sum := a
	sum.Actions = map[ebpf.XDPAction]uint64{ebpf.XDPTx: 900}
	sum.PerQueue = append([]QueueReport(nil), a.PerQueue...)
	sum.Add(b)

	// Traffic and queue counters.
	if sum.Sent != 1500 || sum.Received != 1200 || sum.Lost != 300 {
		t.Errorf("traffic sums: sent %d received %d lost %d", sum.Sent, sum.Received, sum.Lost)
	}
	if sum.QueueOverflows != 4 || sum.OverflowBursts != 3 || sum.WatchdogTrips != 3 {
		t.Errorf("queue counters: %d/%d/%d", sum.QueueOverflows, sum.OverflowBursts, sum.WatchdogTrips)
	}
	// Recovery counters.
	if sum.Recoveries != 5 || sum.RecoveryAborted != 12 || sum.RecoveryBackoffCycles != 1536 || sum.CheckpointsTaken != 5 {
		t.Errorf("recovery counters: %d/%d/%d/%d",
			sum.Recoveries, sum.RecoveryAborted, sum.RecoveryBackoffCycles, sum.CheckpointsTaken)
	}
	// Update counters and first-non-empty strings.
	if sum.UpdatesAttempted != 2 || sum.UpdatesCompleted != 1 || sum.UpdatesRolledBack != 1 {
		t.Errorf("update outcomes: %d/%d/%d", sum.UpdatesAttempted, sum.UpdatesCompleted, sum.UpdatesRolledBack)
	}
	if sum.UpdateStage != "done" {
		t.Errorf("UpdateStage %q, want first non-empty \"done\"", sum.UpdateStage)
	}
	if sum.UpdateFailure != "migrate: map full" {
		t.Errorf("UpdateFailure %q, want carried from second report", sum.UpdateFailure)
	}
	if sum.MigratedEntries != 64 || sum.CanariedPackets != 40 || sum.CanaryDivergences != 1 {
		t.Errorf("migration/canary: %d/%d/%d", sum.MigratedEntries, sum.CanariedPackets, sum.CanaryDivergences)
	}
	// Steer fallback and merge conflict counters.
	if sum.SteerFallbacks != 10 || sum.MergeConflicts != 2 {
		t.Errorf("steer/merge: %d/%d", sum.SteerFallbacks, sum.MergeConflicts)
	}
	// Multi-queue breakdown appends.
	if sum.QueueCount != 6 || len(sum.PerQueue) != 3 {
		t.Errorf("queue breakdown: count %d, %d entries", sum.QueueCount, len(sum.PerQueue))
	}
	// Rates sum; latency means weight by Received; maxes fold.
	if sum.OfferedMpps != 200 || sum.AchievedMpps != 170 {
		t.Errorf("rates: offered %.0f achieved %.0f", sum.OfferedMpps, sum.AchievedMpps)
	}
	wantAvg := (1000.0*900 + 2000.0*300) / 1200.0
	if sum.AvgLatencyNs != wantAvg {
		t.Errorf("AvgLatencyNs %.2f, want Received-weighted %.2f", sum.AvgLatencyNs, wantAvg)
	}
	if sum.MaxLatencyNs != 5000 {
		t.Errorf("MaxLatencyNs %.0f, want max 5000", sum.MaxLatencyNs)
	}
	// Actions merge.
	if sum.Actions[ebpf.XDPTx] != 1100 || sum.Actions[ebpf.XDPDrop] != 100 {
		t.Errorf("actions merged to %v", sum.Actions)
	}
}

// TestReportAddZero: folding a zero Report changes nothing — the
// identity the fleet loop relies on when a device sat out an epoch.
func TestReportAddZero(t *testing.T) {
	r := Report{Sent: 10, Received: 9, Lost: 1, AvgLatencyNs: 100, MaxLatencyNs: 200,
		UpdateStage: "done", QueueCount: 1}
	want := r
	r.Add(Report{})
	if r.Sent != want.Sent || r.Received != want.Received || r.Lost != want.Lost ||
		r.AvgLatencyNs != want.AvgLatencyNs || r.MaxLatencyNs != want.MaxLatencyNs ||
		r.UpdateStage != want.UpdateStage || r.QueueCount != want.QueueCount {
		t.Errorf("adding zero report mutated aggregate: %+v -> %+v", want, r)
	}
	var z Report
	z.Add(want)
	if z.Sent != want.Sent || z.AvgLatencyNs != want.AvgLatencyNs || z.UpdateStage != "done" {
		t.Errorf("zero + r != r: %+v", z)
	}
}
