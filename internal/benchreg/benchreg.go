// Package benchreg is the benchmark-regression harness: it collects the
// paper's headline performance numbers (Figure 9a throughput, Figure 9b
// latency, Figure 10 resources, and the multi-queue scaling sweep) into
// a committed JSON baseline, and checks a fresh collection against it.
//
// Every guarded number is a *simulated* quantity — packets per second of
// simulated hardware time, FPGA resource percentages — so the baseline
// is bit-reproducible on any host and a regression is always a code
// change, never scheduler noise. Host-side wall-clock figures (the
// actual parallel speedup of the multi-queue engine) are recorded next
// to them for the record, prefixed "host/", and never gated.
package benchreg

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"ehdl/internal/apps"
	"ehdl/internal/core"
	"ehdl/internal/hdl"
	"ehdl/internal/hwsim"
	"ehdl/internal/nic"
	"ehdl/internal/pktgen"
)

// DefaultPackets is the per-measurement-point packet count of the
// committed baseline. Checks must use the same count: the drain tail is
// amortised differently at different run lengths.
const DefaultPackets = 6000

// DefaultTolerancePct is the regression gate: simulated Mpps may not
// drop more than this fraction below the baseline.
const DefaultTolerancePct = 5.0

// ScalingQueues is the queue sweep of the scale-out measurement.
var ScalingQueues = []int{1, 2, 4, 8}

// Baseline is one recorded measurement set.
type Baseline struct {
	// Schema versions the point naming; bump when keys change meaning.
	Schema int `json:"schema"`
	// Packets is the per-point packet count the measurements used.
	Packets int `json:"packets"`
	// NumCPU records the collecting host's core count: the "host/"
	// points are only meaningful relative to it.
	NumCPU int `json:"numcpu"`
	// Points maps measurement names to values. Keys ending in "/mpps"
	// are gated; "host/..." keys are informational.
	Points map[string]float64 `json:"points"`
}

// Collect runs every guarded measurement.
func Collect(packets int) (*Baseline, error) {
	if packets <= 0 {
		packets = DefaultPackets
	}
	b := &Baseline{
		Schema:  1,
		Packets: packets,
		NumCPU:  runtime.NumCPU(),
		Points:  map[string]float64{},
	}

	dev := hdl.AlveoU50()
	for _, app := range apps.All() {
		pl, err := compile(app)
		if err != nil {
			return nil, fmt.Errorf("benchreg: %s: %w", app.Name, err)
		}

		// Figure 9a: line-rate forwarding throughput.
		rep, err := runLoad(pl, app, nic.ShellConfig{}, packets, 0)
		if err != nil {
			return nil, fmt.Errorf("benchreg: %s throughput: %w", app.Name, err)
		}
		b.Points["fig9a/"+app.Name+"/mpps"] = rep.AchievedMpps
		b.Points["fig9a/"+app.Name+"/lost"] = float64(rep.Lost)

		// Figure 9b: forwarding latency at a moderate offered rate.
		rep, err = runLoad(pl, app, nic.ShellConfig{}, packets/2, 50e6)
		if err != nil {
			return nil, fmt.Errorf("benchreg: %s latency: %w", app.Name, err)
		}
		b.Points["fig9b/"+app.Name+"/latency_ns"] = rep.AvgLatencyNs

		// Figure 10: device utilisation of the generated design.
		pct := hdl.EstimateDesign(pl).PercentOf(dev)
		b.Points["fig10/"+app.Name+"/lut_pct"] = pct.LUT
		b.Points["fig10/"+app.Name+"/bram_pct"] = pct.BRAM
	}

	// Multi-queue scaling: the toy pipeline saturates one replica at
	// 250 Mpps, so offering 85% of N replicas' aggregate capacity shows
	// whether the fleet actually absorbs it. Simulated Mpps is the gated
	// series; wall-clock packet rates ride along under "host/".
	app, _ := apps.ByName("toy")
	pl, err := compile(app)
	if err != nil {
		return nil, fmt.Errorf("benchreg: toy: %w", err)
	}
	simMpps := map[int]float64{}
	hostMpps := map[int]float64{}
	for _, q := range ScalingQueues {
		cfg := nic.ShellConfig{Queues: q, Sim: hwsim.Config{InputQueuePackets: 64}}
		offered := 0.85 * 250e6 * float64(q)
		start := time.Now()
		rep, err := runLoad(pl, app, cfg, packets, offered)
		if err != nil {
			return nil, fmt.Errorf("benchreg: scaling q%d: %w", q, err)
		}
		wall := time.Since(start).Seconds()
		simMpps[q] = rep.AchievedMpps
		b.Points[fmt.Sprintf("scaling/toy/q%d/mpps", q)] = rep.AchievedMpps
		b.Points[fmt.Sprintf("scaling/toy/q%d/lost", q)] = float64(rep.Lost)
		if wall > 0 {
			hostMpps[q] = float64(rep.Received) / wall / 1e6
			b.Points[fmt.Sprintf("host/scaling/toy/q%d/mpps", q)] = hostMpps[q]
		}
	}
	if simMpps[1] > 0 {
		b.Points["scaling/toy/speedup_4q"] = simMpps[4] / simMpps[1]
	}
	if hostMpps[1] > 0 {
		b.Points["host/scaling/toy/speedup_4q"] = hostMpps[4] / hostMpps[1]
	}
	return b, nil
}

// Compare checks a fresh collection against a baseline and returns one
// message per regression: any "/mpps"-suffixed simulated point more
// than tolerancePct below its recorded value, or a recorded point that
// vanished. Improvements and informational points never fail.
func Compare(base, cur *Baseline, tolerancePct float64) []string {
	if tolerancePct <= 0 {
		tolerancePct = DefaultTolerancePct
	}
	var regressions []string
	if base.Packets != cur.Packets {
		regressions = append(regressions,
			fmt.Sprintf("packet counts differ (baseline %d, current %d): measurements are not comparable", base.Packets, cur.Packets))
		return regressions
	}
	keys := make([]string, 0, len(base.Points))
	for k := range base.Points {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if strings.HasPrefix(k, "host/") || !strings.HasSuffix(k, "/mpps") {
			continue
		}
		want := base.Points[k]
		got, ok := cur.Points[k]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: measurement disappeared (baseline %.3f)", k, want))
			continue
		}
		if Regressed(want, got, tolerancePct) {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.3f Mpps is %.1f%% below the baseline %.3f", k, got, 100*(want-got)/want, want))
		}
	}
	return regressions
}

// Regressed reports whether current has fallen more than tolerancePct
// below baseline — the single floor rule shared by the baseline file
// gate above and the fleet rollout's per-device throughput check, so
// "regression" means the same thing on one device and across a cluster.
// A non-positive tolerance selects DefaultTolerancePct; improvements
// never regress.
func Regressed(baseline, current, tolerancePct float64) bool {
	if tolerancePct <= 0 {
		tolerancePct = DefaultTolerancePct
	}
	return current < baseline*(1-tolerancePct/100)
}

// Save writes the baseline as indented JSON.
func Save(path string, b *Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a baseline file.
func Load(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("benchreg: %s: %w", path, err)
	}
	if b.Points == nil {
		return nil, fmt.Errorf("benchreg: %s: no points recorded", path)
	}
	return &b, nil
}

func compile(app *apps.App) (*core.Pipeline, error) {
	prog, err := app.Program()
	if err != nil {
		return nil, err
	}
	return core.Compile(prog, core.Options{})
}

// runLoad builds a fresh shell (fresh map state — measurements must not
// inherit a previous point's entries) and drives one load. offered 0
// means line rate for 64-byte frames.
func runLoad(pl *core.Pipeline, app *apps.App, cfg nic.ShellConfig, packets int, offered float64) (nic.Report, error) {
	sh, err := nic.New(pl, cfg)
	if err != nil {
		return nic.Report{}, err
	}
	if err := app.Setup(sh.Maps()); err != nil {
		return nic.Report{}, err
	}
	if offered <= 0 {
		offered = sh.LineRateMpps(64) * 1e6
	}
	gen := pktgen.NewGenerator(app.Traffic)
	return sh.RunLoad(gen.Next, packets, offered)
}
