// Package benchreg is the benchmark-regression harness: it collects the
// paper's headline performance numbers (Figure 9a throughput, Figure 9b
// latency, Figure 10 resources, and the multi-queue scaling sweep) into
// a committed JSON baseline, and checks a fresh collection against it.
//
// Every number gated at the 5% tolerance is a *simulated* quantity —
// packets per second of simulated hardware time, FPGA resource
// percentages — so the baseline is bit-reproducible on any host and a
// regression is always a code change, never scheduler noise. Host-side
// wall-clock figures ride along under the "host/" prefix for the
// record, ungated — except the two compiled fast-path points
// (KeyFastpathToyMpps, KeyFastpathSpeedup4Q), whose entire purpose is
// wall-clock speed; they carry their own wide-margin gates.
package benchreg

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"ehdl/internal/apps"
	"ehdl/internal/core"
	"ehdl/internal/hdl"
	"ehdl/internal/hwsim"
	"ehdl/internal/nic"
	"ehdl/internal/pktgen"
)

// DefaultPackets is the per-measurement-point packet count of the
// committed baseline. Checks must use the same count: the drain tail is
// amortised differently at different run lengths.
const DefaultPackets = 6000

// DefaultTolerancePct is the regression gate: simulated Mpps may not
// drop more than this fraction below the baseline.
const DefaultTolerancePct = 5.0

// ScalingQueues is the queue sweep of the scale-out measurement.
var ScalingQueues = []int{1, 2, 4, 8}

// The compiled fast path's host-throughput points. Unlike every other
// "host/" key these two ARE gated: the whole point of the compiled
// executor is wall-clock speed, so bench-check fails if it stops
// delivering it. The gates arm only when the committed baseline
// records the keys, so older baselines keep their meaning.
const (
	// KeyFastpathToyMpps is the compiled path's single-queue toy
	// throughput over pre-generated traffic. Gated: it must reach at
	// least FastpathFactor times the interpreter's committed
	// single-queue rate (KeyScalingToyQ1Mpps).
	KeyFastpathToyMpps = "host/fastpath/toy/mpps"
	// KeyScalingToyQ1Mpps is the interpreter's single-queue toy
	// wall-clock rate — the committed denominator of the fast-path gate.
	KeyScalingToyQ1Mpps = "host/scaling/toy/q1/mpps"
	// KeyFastpathSpeedup4Q is the 4-queue wall-clock ratio of the
	// compiled path over the interpreter, both legs measured in the
	// same collection over identical pre-generated traffic. Gated: must
	// exceed 1 — the host speedup the cycle-accurate interpreter burns.
	KeyFastpathSpeedup4Q = "host/fastpath/toy/speedup_4q"
)

// FastpathFactor is the required compiled-over-interpreter margin of
// the KeyFastpathToyMpps gate.
const FastpathFactor = 10.0

// Baseline is one recorded measurement set.
type Baseline struct {
	// Schema versions the point naming; bump when keys change meaning.
	Schema int `json:"schema"`
	// Packets is the per-point packet count the measurements used.
	Packets int `json:"packets"`
	// NumCPU records the collecting host's core count: the "host/"
	// points are only meaningful relative to it.
	NumCPU int `json:"numcpu"`
	// Points maps measurement names to values. Keys ending in "/mpps"
	// are gated; "host/..." keys are informational.
	Points map[string]float64 `json:"points"`
}

// Collect runs every guarded measurement.
func Collect(packets int) (*Baseline, error) {
	if packets <= 0 {
		packets = DefaultPackets
	}
	b := &Baseline{
		Schema:  1,
		Packets: packets,
		NumCPU:  runtime.NumCPU(),
		Points:  map[string]float64{},
	}

	dev := hdl.AlveoU50()
	for _, app := range apps.All() {
		pl, err := compile(app)
		if err != nil {
			return nil, fmt.Errorf("benchreg: %s: %w", app.Name, err)
		}

		// Figure 9a: line-rate forwarding throughput.
		rep, err := runLoad(pl, app, nic.ShellConfig{}, packets, 0)
		if err != nil {
			return nil, fmt.Errorf("benchreg: %s throughput: %w", app.Name, err)
		}
		b.Points["fig9a/"+app.Name+"/mpps"] = rep.AchievedMpps
		b.Points["fig9a/"+app.Name+"/lost"] = float64(rep.Lost)

		// Figure 9b: forwarding latency at a moderate offered rate.
		rep, err = runLoad(pl, app, nic.ShellConfig{}, packets/2, 50e6)
		if err != nil {
			return nil, fmt.Errorf("benchreg: %s latency: %w", app.Name, err)
		}
		b.Points["fig9b/"+app.Name+"/latency_ns"] = rep.AvgLatencyNs

		// Figure 10: device utilisation of the generated design.
		pct := hdl.EstimateDesign(pl).PercentOf(dev)
		b.Points["fig10/"+app.Name+"/lut_pct"] = pct.LUT
		b.Points["fig10/"+app.Name+"/bram_pct"] = pct.BRAM
	}

	// Multi-queue scaling: the toy pipeline saturates one replica at
	// 250 Mpps, so offering 85% of N replicas' aggregate capacity shows
	// whether the fleet actually absorbs it. Simulated Mpps is the gated
	// series; wall-clock packet rates ride along under "host/".
	app, _ := apps.ByName("toy")
	pl, err := compile(app)
	if err != nil {
		return nil, fmt.Errorf("benchreg: toy: %w", err)
	}
	simMpps := map[int]float64{}
	hostMpps := map[int]float64{}
	for _, q := range ScalingQueues {
		cfg := nic.ShellConfig{Queues: q, Sim: hwsim.Config{InputQueuePackets: 64}}
		offered := 0.85 * 250e6 * float64(q)
		start := time.Now()
		rep, err := runLoad(pl, app, cfg, packets, offered)
		if err != nil {
			return nil, fmt.Errorf("benchreg: scaling q%d: %w", q, err)
		}
		wall := time.Since(start).Seconds()
		simMpps[q] = rep.AchievedMpps
		b.Points[fmt.Sprintf("scaling/toy/q%d/mpps", q)] = rep.AchievedMpps
		b.Points[fmt.Sprintf("scaling/toy/q%d/lost", q)] = float64(rep.Lost)
		if wall > 0 {
			hostMpps[q] = float64(rep.Received) / wall / 1e6
			b.Points[fmt.Sprintf("host/scaling/toy/q%d/mpps", q)] = hostMpps[q]
		}
	}
	if simMpps[1] > 0 {
		b.Points["scaling/toy/speedup_4q"] = simMpps[4] / simMpps[1]
	}
	if hostMpps[1] > 0 {
		b.Points["host/scaling/toy/speedup_4q"] = hostMpps[4] / hostMpps[1]
	}

	// Compiled fast path: the same designs on the closure-chain
	// executor. Traffic is pre-generated and cycled so the generator
	// stays out of the measurement — at compiled-path budgets (hundreds
	// of nanoseconds per packet) it would otherwise BE the measurement;
	// the interpreter legs here use the identical drive so the speedup
	// ratio compares executors, not harnesses. Every registered app is
	// measured — the paper five plus the extras the conformance suite
	// covers. Each point is the best of several trials: a compiled-path
	// run over a few thousand packets lasts single-digit milliseconds,
	// short enough that one scheduler preemption halves the figure, so
	// the least-interfered trial is the measurement.
	for _, app := range append(apps.All(), apps.Toy(), apps.LeakyBucket(), apps.LoadBalancer()) {
		pl, err := compile(app)
		if err != nil {
			return nil, fmt.Errorf("benchreg: %s: %w", app.Name, err)
		}
		n := packets
		if app.Name == "toy" {
			// The gated point gets a much longer window on top of the
			// trials: at compiled-path rates a multi-millisecond window
			// still loses double-digit percentages to one preemption,
			// and this is the one point a gate hangs off.
			n = packets * 50
		}
		mpps, err := hostMppsBatch(pl, app, nic.ShellConfig{FastPath: true}, n, 0, 3)
		if err != nil {
			return nil, fmt.Errorf("benchreg: fastpath %s: %w", app.Name, err)
		}
		b.Points["host/fastpath/"+app.Name+"/mpps"] = mpps
	}

	// The 4-queue wall-clock comparison: compiled vs interpreted RSS
	// engine, same offered rate as the scaling sweep's q4 point. app
	// and pl are still the toy design from the scaling sweep.
	q4 := nic.ShellConfig{Queues: 4, Sim: hwsim.Config{InputQueuePackets: 64}}
	offered4 := 0.85 * 250e6 * 4
	fastCfg := q4
	fastCfg.FastPath = true
	fast4, err := hostMppsBatch(pl, app, fastCfg, packets, offered4, 3)
	if err != nil {
		return nil, fmt.Errorf("benchreg: fastpath toy q4: %w", err)
	}
	interp4, err := hostMppsBatch(pl, app, q4, packets, offered4, 3)
	if err != nil {
		return nil, fmt.Errorf("benchreg: interp toy q4: %w", err)
	}
	b.Points["host/fastpath/toy/q4/mpps"] = fast4
	b.Points["host/fastpath/toy/q4_interp/mpps"] = interp4
	if interp4 > 0 {
		b.Points[KeyFastpathSpeedup4Q] = fast4 / interp4
	}
	return b, nil
}

// Compare checks a fresh collection against a baseline and returns one
// message per regression: any "/mpps"-suffixed simulated point more
// than tolerancePct below its recorded value, or a recorded point that
// vanished. Improvements and informational points never fail.
func Compare(base, cur *Baseline, tolerancePct float64) []string {
	if tolerancePct <= 0 {
		tolerancePct = DefaultTolerancePct
	}
	var regressions []string
	if base.Packets != cur.Packets {
		regressions = append(regressions,
			fmt.Sprintf("packet counts differ (baseline %d, current %d): measurements are not comparable", base.Packets, cur.Packets))
		return regressions
	}
	keys := make([]string, 0, len(base.Points))
	for k := range base.Points {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if strings.HasPrefix(k, "host/") || !strings.HasSuffix(k, "/mpps") {
			continue
		}
		want := base.Points[k]
		got, ok := cur.Points[k]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: measurement disappeared (baseline %.3f)", k, want))
			continue
		}
		if Regressed(want, got, tolerancePct) {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.3f Mpps is %.1f%% below the baseline %.3f", k, got, 100*(want-got)/want, want))
		}
	}
	regressions = append(regressions, compareFastpath(base, cur)...)
	return regressions
}

// compareFastpath applies the two compiled-path gates. Both arm only
// when the committed baseline records the corresponding key, so a
// baseline predating the fast path (or a synthetic test baseline)
// checks exactly as before.
//
// The Mpps floor is FastpathFactor times the smaller of the committed
// and the just-measured interpreter rate. The two legs of the current
// collection ran on the same host minutes apart, so a machine that is
// uniformly slow today sinks both together and the ratio holds; the
// committed value caps the denominator so a fast machine cannot raise
// the bar above what was recorded. A genuine fast-path regression drops
// the numerator alone and trips the gate under either denominator.
func compareFastpath(base, cur *Baseline) []string {
	var regressions []string
	if _, ok := base.Points[KeyFastpathToyMpps]; ok {
		denom := base.Points[KeyScalingToyQ1Mpps]
		if q1, ok := cur.Points[KeyScalingToyQ1Mpps]; ok && q1 < denom {
			denom = q1
		}
		floor := FastpathFactor * denom
		got, ok := cur.Points[KeyFastpathToyMpps]
		switch {
		case !ok:
			regressions = append(regressions,
				fmt.Sprintf("%s: measurement disappeared (baseline %.3f)", KeyFastpathToyMpps, base.Points[KeyFastpathToyMpps]))
		case got < floor:
			regressions = append(regressions,
				fmt.Sprintf("%s: %.3f Mpps is below %.0fx the interpreter rate (%.3f x %.0f = %.3f)",
					KeyFastpathToyMpps, got, FastpathFactor, denom, FastpathFactor, floor))
		}
	}
	if _, ok := base.Points[KeyFastpathSpeedup4Q]; ok {
		got, ok := cur.Points[KeyFastpathSpeedup4Q]
		switch {
		case !ok:
			regressions = append(regressions,
				fmt.Sprintf("%s: measurement disappeared (baseline %.3f)", KeyFastpathSpeedup4Q, base.Points[KeyFastpathSpeedup4Q]))
		case got <= 1:
			regressions = append(regressions,
				fmt.Sprintf("%s: %.3f does not exceed 1 — the compiled path is not beating the interpreter on the host", KeyFastpathSpeedup4Q, got))
		}
	}
	return regressions
}

// Regressed reports whether current has fallen more than tolerancePct
// below baseline — the single floor rule shared by the baseline file
// gate above and the fleet rollout's per-device throughput check, so
// "regression" means the same thing on one device and across a cluster.
// A non-positive tolerance selects DefaultTolerancePct; improvements
// never regress.
func Regressed(baseline, current, tolerancePct float64) bool {
	if tolerancePct <= 0 {
		tolerancePct = DefaultTolerancePct
	}
	return current < baseline*(1-tolerancePct/100)
}

// Save writes the baseline as indented JSON.
func Save(path string, b *Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a baseline file.
func Load(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("benchreg: %s: %w", path, err)
	}
	if b.Points == nil {
		return nil, fmt.Errorf("benchreg: %s: no points recorded", path)
	}
	return &b, nil
}

func compile(app *apps.App) (*core.Pipeline, error) {
	prog, err := app.Program()
	if err != nil {
		return nil, err
	}
	return core.Compile(prog, core.Options{})
}

// hostMppsBatch measures a host wall-clock packet rate as the best of
// `trials` independent runs of runLoadBatch, each on a fresh shell.
func hostMppsBatch(pl *core.Pipeline, app *apps.App, cfg nic.ShellConfig, packets int, offered float64, trials int) (float64, error) {
	best := 0.0
	for t := 0; t < trials; t++ {
		rep, wall, err := runLoadBatch(pl, app, cfg, packets, offered)
		if err != nil {
			return 0, err
		}
		if wall > 0 {
			if m := float64(rep.Received) / wall / 1e6; m > best {
				best = m
			}
		}
	}
	return best, nil
}

// runLoadBatch is runLoad over a pre-generated packet batch, returning
// the wall-clock seconds alongside the report. Used for the host-speed
// points where per-packet generation would distort the figure. A
// FastPath config that silently fell back to the interpreter is an
// error: the point would gate the wrong executor.
func runLoadBatch(pl *core.Pipeline, app *apps.App, cfg nic.ShellConfig, packets int, offered float64) (nic.Report, float64, error) {
	sh, err := nic.New(pl, cfg)
	if err != nil {
		return nic.Report{}, 0, err
	}
	if cfg.FastPath && !sh.FastPath() {
		return nic.Report{}, 0, fmt.Errorf("fast path did not engage")
	}
	if err := app.Setup(sh.Maps()); err != nil {
		return nic.Report{}, 0, err
	}
	if offered <= 0 {
		offered = sh.LineRateMpps(64) * 1e6
	}
	const batchN = 4096
	batch := pktgen.NewGenerator(app.Traffic).Batch(batchN)
	i := 0
	next := func() []byte {
		p := batch[i%batchN]
		i++
		return p
	}
	start := time.Now()
	rep, err := sh.RunLoad(next, packets, offered)
	return rep, time.Since(start).Seconds(), err
}

// runLoad builds a fresh shell (fresh map state — measurements must not
// inherit a previous point's entries) and drives one load. offered 0
// means line rate for 64-byte frames.
func runLoad(pl *core.Pipeline, app *apps.App, cfg nic.ShellConfig, packets int, offered float64) (nic.Report, error) {
	sh, err := nic.New(pl, cfg)
	if err != nil {
		return nic.Report{}, err
	}
	if err := app.Setup(sh.Maps()); err != nil {
		return nic.Report{}, err
	}
	if offered <= 0 {
		offered = sh.LineRateMpps(64) * 1e6
	}
	gen := pktgen.NewGenerator(app.Traffic)
	return sh.RunLoad(gen.Next, packets, offered)
}
