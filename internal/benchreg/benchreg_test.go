package benchreg

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// collectOnce shares one (expensive) collection across the tests.
var cached *Baseline

func collect(t *testing.T) *Baseline {
	t.Helper()
	if cached == nil {
		b, err := Collect(1500)
		if err != nil {
			t.Fatal(err)
		}
		cached = b
	}
	return cached
}

func TestCollectCoversEveryFigure(t *testing.T) {
	b := collect(t)
	if b.NumCPU != runtime.NumCPU() {
		t.Errorf("recorded %d CPUs, host has %d", b.NumCPU, runtime.NumCPU())
	}
	for _, k := range []string{
		"fig9a/firewall/mpps", "fig9a/suricata/mpps", "fig9b/router/latency_ns",
		"fig10/firewall/lut_pct", "fig10/firewall/bram_pct",
		"scaling/toy/q1/mpps", "scaling/toy/q8/mpps", "scaling/toy/speedup_4q",
		KeyFastpathToyMpps, "host/fastpath/firewall/mpps",
		"host/fastpath/toy/q4/mpps", KeyFastpathSpeedup4Q,
	} {
		if _, ok := b.Points[k]; !ok {
			t.Errorf("point %q missing", k)
		}
	}
	for k, v := range b.Points {
		if strings.HasSuffix(k, "/mpps") && v <= 0 {
			t.Errorf("%s = %f, want > 0", k, v)
		}
	}
}

// TestScalingSpeedupRecorded is the acceptance number: four replicas
// must sustain at least 2.5x the single queue's simulated throughput.
// The host-side figure is asserted only on hosts with the cores to
// show it; the recorded NumCPU explains the committed value either way.
func TestScalingSpeedupRecorded(t *testing.T) {
	b := collect(t)
	if sp := b.Points["scaling/toy/speedup_4q"]; sp < 2.5 {
		t.Errorf("simulated 4-queue speedup %.2fx, want >= 2.5x", sp)
	}
	if lost := b.Points["scaling/toy/q4/lost"]; lost != 0 {
		t.Errorf("4 queues lost %.0f packets at 85%% aggregate load", lost)
	}
	if runtime.NumCPU() >= 4 {
		if sp := b.Points["host/scaling/toy/speedup_4q"]; sp < 1.2 {
			t.Errorf("host-side 4-queue speedup %.2fx on a %d-CPU host, want parallel gain", sp, runtime.NumCPU())
		}
	}
}

// TestCollectDeterministic: every simulated point must be bit-equal
// across collections; only the host/ wall-clock points may move.
func TestCollectDeterministic(t *testing.T) {
	a := collect(t)
	b, err := Collect(1500)
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range a.Points {
		if strings.HasPrefix(k, "host/") {
			continue
		}
		if got := b.Points[k]; got != want {
			t.Errorf("%s: %v then %v across two collections", k, want, got)
		}
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := &Baseline{Packets: 100, Points: map[string]float64{
		"fig9a/toy/mpps":           100,
		"fig9b/toy/latency_ns":     50,
		"host/scaling/toy/q1/mpps": 3,
	}}
	cur := &Baseline{Packets: 100, Points: map[string]float64{
		"fig9a/toy/mpps":           96,
		"fig9b/toy/latency_ns":     500, // not gated: latency is informational
		"host/scaling/toy/q1/mpps": 0.1, // not gated: host wall clock
	}}
	if regs := Compare(base, cur, 5); len(regs) != 0 {
		t.Errorf("4%% drop within 5%% tolerance flagged: %v", regs)
	}
	cur.Points["fig9a/toy/mpps"] = 94
	regs := Compare(base, cur, 5)
	if len(regs) != 1 || !strings.Contains(regs[0], "fig9a/toy/mpps") {
		t.Errorf("6%% drop not flagged: %v", regs)
	}
	delete(cur.Points, "fig9a/toy/mpps")
	if regs := Compare(base, cur, 5); len(regs) != 1 || !strings.Contains(regs[0], "disappeared") {
		t.Errorf("vanished point not flagged: %v", regs)
	}
	if regs := Compare(base, &Baseline{Packets: 99, Points: map[string]float64{}}, 5); len(regs) != 1 {
		t.Errorf("packet-count mismatch not flagged: %v", regs)
	}
}

// TestFastpathGates pins the compiled-path gate arithmetic: the gates
// arm only when the baseline records the fast-path keys, the Mpps gate
// floors at FastpathFactor times the smaller of the committed and the
// just-measured interpreter rate (noise on the collecting host sinks
// both legs together; a fast host cannot raise the bar), and the
// 4-queue speedup must strictly exceed 1.
func TestFastpathGates(t *testing.T) {
	base := &Baseline{Packets: 100, Points: map[string]float64{
		KeyScalingToyQ1Mpps:  0.4,
		KeyFastpathToyMpps:   6,
		KeyFastpathSpeedup4Q: 8,
	}}
	cur := &Baseline{Packets: 100, Points: map[string]float64{
		KeyScalingToyQ1Mpps:  0.2, // a slow collection day halves the denominator too
		KeyFastpathToyMpps:   2.5, // above 10 x min(0.4, 0.2)
		KeyFastpathSpeedup4Q: 1.5,
	}}
	if regs := Compare(base, cur, 5); len(regs) != 0 {
		t.Errorf("passing fast path flagged: %v", regs)
	}

	cur.Points[KeyFastpathToyMpps] = 1.9 // below 10 x min(0.4, 0.2)
	regs := Compare(base, cur, 5)
	if len(regs) != 1 || !strings.Contains(regs[0], KeyFastpathToyMpps) {
		t.Errorf("sub-floor fast path not flagged: %v", regs)
	}

	// A fast host cannot raise the bar past the committed rate.
	cur.Points[KeyScalingToyQ1Mpps] = 0.9
	cur.Points[KeyFastpathToyMpps] = 4.5 // above 10 x min(0.4, 0.9), below 10 x 0.9
	if regs := Compare(base, cur, 5); len(regs) != 0 {
		t.Errorf("committed-rate cap not applied: %v", regs)
	}
	cur.Points[KeyScalingToyQ1Mpps] = 0.2
	cur.Points[KeyFastpathToyMpps] = 2.5

	cur.Points[KeyFastpathSpeedup4Q] = 0.97
	regs = Compare(base, cur, 5)
	if len(regs) != 1 || !strings.Contains(regs[0], KeyFastpathSpeedup4Q) {
		t.Errorf("speedup <= 1 not flagged: %v", regs)
	}
	delete(cur.Points, KeyFastpathSpeedup4Q)
	regs = Compare(base, cur, 5)
	if len(regs) != 1 || !strings.Contains(regs[0], "disappeared") {
		t.Errorf("vanished speedup not flagged: %v", regs)
	}

	// A baseline that predates the fast path arms nothing, whatever the
	// current collection contains.
	old := &Baseline{Packets: 100, Points: map[string]float64{KeyScalingToyQ1Mpps: 0.4}}
	if regs := Compare(old, &Baseline{Packets: 100, Points: map[string]float64{}}, 5); len(regs) != 0 {
		t.Errorf("pre-fastpath baseline armed gates: %v", regs)
	}
}

// TestRegressedFloor pins the shared floor rule: a drop within
// tolerance passes, a drop past it fails, improvements never fail, and
// a non-positive tolerance selects the default 5%.
func TestRegressedFloor(t *testing.T) {
	if Regressed(100, 96, 5) {
		t.Error("4% drop flagged at 5% tolerance")
	}
	if !Regressed(100, 94, 5) {
		t.Error("6% drop not flagged at 5% tolerance")
	}
	if Regressed(100, 150, 5) {
		t.Error("improvement flagged as regression")
	}
	if !Regressed(100, 90, 0) {
		t.Error("default tolerance not applied for tolerancePct=0")
	}
	if Regressed(0, 0, 5) {
		t.Error("zero baseline regressed against zero current")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	b := collect(t)
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := Save(path, b); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != b.Schema || got.Packets != b.Packets || got.NumCPU != b.NumCPU {
		t.Errorf("header mangled: %+v vs %+v", got, b)
	}
	if len(got.Points) != len(b.Points) {
		t.Fatalf("%d points survived of %d", len(got.Points), len(b.Points))
	}
	for k, v := range b.Points {
		if got.Points[k] != v {
			t.Errorf("%s: %v -> %v through JSON", k, v, got.Points[k])
		}
	}
	if regs := Compare(b, got, 5); len(regs) != 0 {
		t.Errorf("round-tripped baseline regressed against itself: %v", regs)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("loading a missing baseline succeeded")
	}
}

// TestBaselineSaveByteStable: the committed baseline file is diffed in
// review and hashed by the fleet config fingerprint path, so Save must
// emit byte-identical files for equal baselines — map keys sorted, one
// trailing newline.
func TestBaselineSaveByteStable(t *testing.T) {
	b := &Baseline{
		Schema: 1, Packets: 100, NumCPU: 8,
		Points: map[string]float64{
			"firewall/mpps": 2.5, "router/mpps": 1.25,
			"host/firewall/mpps": 30, "bridge/mpps": 3.75,
		},
	}
	dir := t.TempDir()
	p1, p2 := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	if err := Save(p1, b); err != nil {
		t.Fatal(err)
	}
	if err := Save(p2, b); err != nil {
		t.Fatal(err)
	}
	d1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if string(d1) != string(d2) {
		t.Fatalf("two saves of one baseline differ:\n%s\n%s", d1, d2)
	}
	if !strings.Contains(string(d1), "\"bridge/mpps\"") {
		t.Fatal("points missing from saved baseline")
	}
	// Sorted keys: bridge < firewall < host < router in the output.
	if !(strings.Index(string(d1), "bridge/") < strings.Index(string(d1), "firewall/") &&
		strings.Index(string(d1), "firewall/") < strings.Index(string(d1), "host/")) {
		t.Error("saved point keys not sorted")
	}
	if d1[len(d1)-1] != '\n' {
		t.Error("saved baseline missing trailing newline")
	}
}
