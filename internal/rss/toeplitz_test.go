package rss

import (
	"encoding/binary"
	"testing"

	"ehdl/internal/ebpf"
	"ehdl/internal/pktgen"
)

// rssVector is one verification vector from the Microsoft RSS
// specification (the published test table for the default key).
type rssVector struct {
	srcIP, dstIP     [4]byte
	srcPort, dstPort uint16
	withPorts        uint32 // TCP/UDP hash over the 4-tuple
	addrsOnly        uint32 // IPv4-only hash over the address pair
}

var rssVectors = []rssVector{
	{[4]byte{66, 9, 149, 187}, [4]byte{161, 142, 100, 80}, 2794, 1766, 0x51ccc178, 0x323e8fc2},
	{[4]byte{199, 92, 111, 2}, [4]byte{65, 69, 140, 83}, 14230, 4739, 0xc626b0ea, 0xd718262a},
	{[4]byte{24, 19, 198, 95}, [4]byte{12, 22, 207, 184}, 12898, 38024, 0x5c2b394a, 0xd2d0a5de},
	{[4]byte{38, 27, 205, 30}, [4]byte{209, 142, 163, 6}, 48228, 2217, 0xafc7327f, 0x82989176},
	{[4]byte{153, 39, 163, 191}, [4]byte{202, 188, 127, 2}, 44251, 1303, 0x10e828a2, 0x5d1809c5},
}

func (v rssVector) tuple(ports bool) []byte {
	var b []byte
	b = append(b, v.srcIP[:]...)
	b = append(b, v.dstIP[:]...)
	if ports {
		b = binary.BigEndian.AppendUint16(b, v.srcPort)
		b = binary.BigEndian.AppendUint16(b, v.dstPort)
	}
	return b
}

func TestToeplitzSpecVectors(t *testing.T) {
	h, err := NewHasher(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range rssVectors {
		if got := h.Sum(v.tuple(true)); got != v.withPorts {
			t.Errorf("vector %d with ports: got %#08x want %#08x", i, got, v.withPorts)
		}
		if got := h.Sum(v.tuple(false)); got != v.addrsOnly {
			t.Errorf("vector %d addrs only: got %#08x want %#08x", i, got, v.addrsOnly)
		}
	}
}

func TestHashPacketMatchesTupleHash(t *testing.T) {
	h, err := NewHasher(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range rssVectors {
		pkt := pktgen.Build(pktgen.PacketSpec{
			Flow: pktgen.Flow{
				SrcIP:   binary.BigEndian.Uint32(v.srcIP[:]),
				DstIP:   binary.BigEndian.Uint32(v.dstIP[:]),
				SrcPort: v.srcPort,
				DstPort: v.dstPort,
				Proto:   ebpf.IPProtoUDP,
			},
			TotalLen: 64,
		})
		got, ok := h.HashPacket(pkt)
		if !ok {
			t.Fatalf("vector %d: packet did not parse", i)
		}
		if got != v.withPorts {
			t.Errorf("vector %d: packet hash %#08x want %#08x", i, got, v.withPorts)
		}
	}
}

func TestHashPacketMalformedFallsBack(t *testing.T) {
	h, err := NewHasher(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, pkt := range [][]byte{nil, {}, make([]byte, 13), make([]byte, 33)} {
		if _, ok := h.HashPacket(pkt); ok {
			t.Errorf("%d-byte frame should not classify", len(pkt))
		}
	}
}

func TestHashStableForOversizedInput(t *testing.T) {
	h, err := NewHasher(nil)
	if err != nil {
		t.Fatal(err)
	}
	long := make([]byte, 4*len(DefaultKey))
	for i := range long {
		long[i] = byte(i * 31)
	}
	want := h.Sum(long[:h.MaxInputBytes()])
	if got := h.Sum(long); got != want {
		t.Errorf("oversized input changed the hash: %#08x vs %#08x", got, want)
	}
}

func TestShortKeyRejected(t *testing.T) {
	if _, err := NewHasher(make([]byte, minKeyBytes-1)); err == nil {
		t.Fatal("15-byte key should be rejected")
	}
}

func TestIndirectionSpread(t *testing.T) {
	for _, queues := range []int{1, 2, 4, 8} {
		ind, err := NewIndirection(queues)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, queues)
		for hash := uint32(0); hash < 4*IndirectionSize; hash++ {
			q := ind.QueueFor(hash)
			if q < 0 || q >= queues {
				t.Fatalf("queue %d out of range for %d queues", q, queues)
			}
			counts[q]++
		}
		for q, c := range counts {
			if c == 0 {
				t.Errorf("%d queues: queue %d never selected", queues, q)
			}
		}
	}
	if _, err := NewIndirection(0); err == nil {
		t.Fatal("zero queues should be rejected")
	}
}

// TestFlowPinning drives a multi-flow generator through the classifier
// and checks the invariant everything else rests on: one flow, one
// queue, for the whole run.
func TestFlowPinning(t *testing.T) {
	d, err := NewDispatcher(DispatcherConfig{Queues: 4})
	if err != nil {
		t.Fatal(err)
	}
	gen := pktgen.NewGenerator(pktgen.GeneratorConfig{Flows: 64, PacketLen: 64, Seed: 7})
	seen := map[pktgen.Flow]int{}
	for i := 0; i < 2048; i++ {
		pkt := gen.Next()
		flow, err := pktgen.ParseFlow(pkt)
		if err != nil {
			t.Fatal(err)
		}
		q, _ := d.Classify(pkt)
		if prev, ok := seen[flow]; ok && prev != q {
			t.Fatalf("flow %+v crossed queues: %d then %d", flow, prev, q)
		}
		seen[flow] = q
	}
}
