package rss

import (
	"fmt"
	"sync"

	"ehdl/internal/core"
	"ehdl/internal/fastpath"
	"ehdl/internal/hwsim"
	"ehdl/internal/maps"
	"ehdl/internal/obs"
	"ehdl/internal/vm"
)

// Config parameterises the multi-queue engine.
type Config struct {
	// Queues is the replica count. Must be >= 1.
	Queues int
	// Batch is the dispatcher/collector batch size. 0 means
	// DefaultBatch.
	Batch int
	// Key overrides the Toeplitz key (nil selects DefaultKey).
	Key []byte
	// Sim is the per-replica simulator template. ClockHz, hazard
	// policy, protection and watchdog settings apply to every replica.
	// Faults, when set, forks one deterministic per-class stream per
	// replica (same chaos profile, independent draws). Trace is NOT
	// handed to the replicas — the tracer is single-writer — it drives
	// the dispatcher's queue-steer events instead. Metrics is shared by
	// all replicas (the registry is atomic).
	Sim hwsim.Config
	// FastPath requests compiled-closure replicas instead of the
	// cycle-accurate interpreter. It is a request, not a demand: a
	// configuration the fast path cannot serve (faults, protection,
	// watchdog, stall policy, metrics — the fallback matrix in
	// DESIGN.md) keeps the interpreter silently, and FastPath() on the
	// engine reports what actually runs. Queue-steer tracing stays
	// available either way: the tracer lives in the dispatcher, never in
	// the replicas.
	FastPath bool
}

func (c Config) queues() int {
	if c.Queues < 1 {
		return 1
	}
	return c.Queues
}

func (c Config) batch() int {
	if c.Batch <= 0 {
		return DefaultBatch
	}
	return c.Batch
}

// Completion is one retired packet flowing out of the collector.
type Completion struct {
	// Queue is the replica that executed the packet.
	Queue int
	// Seq is the global arrival index the dispatcher stamped (not the
	// replica-local injection sequence, which is in Res.Seq).
	Seq uint64
	// PktLen is the frame length at injection (Res.Data is only
	// populated under KeepData).
	PktLen int
	// Res is the replica simulator's result.
	Res hwsim.Result
}

// QueueStats is the per-replica slice of a run.
type QueueStats struct {
	// Steered counts arrivals the dispatcher classified to this queue.
	Steered uint64
	// Cycles is the replica's simulated cycle count for the session
	// (including its drain tail).
	Cycles uint64
	// Stats is the replica simulator's counter delta for the session.
	Stats hwsim.Stats
}

// RunStats aggregates one engine session (Start..Drain).
type RunStats struct {
	// PerQueue holds one entry per replica, index == queue.
	PerQueue []QueueStats
	// Arrivals counts packets offered to the dispatcher.
	Arrivals uint64
	// FallbackSteers counts malformed/non-IP frames taking the queue-0
	// catch-all.
	FallbackSteers uint64
	// MergeConflicts counts map keys mutated by more than one bank —
	// zero unless flow pinning was violated.
	MergeConflicts uint64
	// MaxCycles is the longest replica session in cycles: hardware
	// replicas run concurrently, so this is the run's wall-clock.
	MaxCycles uint64
}

// replica is one pipeline copy and its worker-session state. The
// engine behind sim is either the cycle-accurate interpreter or a
// compiled fast-path machine; the worker drives the shared Core
// surface and never cares which.
type replica struct {
	idx int
	sim hwsim.Core

	// globalSeq maps the replica-local injection sequence of an
	// in-flight packet to its global arrival index and frame length.
	// Touched only by the worker goroutine.
	globalSeq map[uint64]inflight

	// Session state, reset by Start.
	cycleBase  uint64
	statsBase  hwsim.Stats
	endCycles  uint64
	endStats   hwsim.Stats
	runErr    error
}

// inflight ties a replica-local injection to its global identity.
type inflight struct {
	seq    uint64
	pktLen int
}

// Engine replicates one compiled pipeline across N queues, each on its
// own goroutine, with banked per-flow maps and one shared instance for
// read-only state — the host-side model of the paper's Section 5
// replicated deployment.
type Engine struct {
	pl  *core.Pipeline
	cfg Config

	sharing []Sharing
	bankeds map[int]*banked
	host    *maps.Set

	replicas []*replica
	fastpath bool
	sealed   bool
	running  bool

	disp        *Dispatcher
	completions chan []Completion
	workerWG    sync.WaitGroup
	collectWG   sync.WaitGroup
	onComplete  func(Completion)
	completed   []*obs.Counter
	drainBound  uint64
}

// defaultDrainBound caps the per-replica drain tail after the last
// arrival: generous against stall policies and flush storms, far below
// anything a livelock would need (the watchdog owns that).
const defaultDrainBound = 4_000_000

// NewEngine builds the replicas and the sharded map substrate. The
// returned engine's HostMaps set is ready for application setup; call
// Start before offering traffic.
func NewEngine(pl *core.Pipeline, cfg Config) (*Engine, error) {
	n := cfg.queues()
	e := &Engine{
		pl:         pl,
		cfg:        cfg,
		bankeds:    map[int]*banked{},
		drainBound: defaultDrainBound,
	}

	prog := pl.Prog
	// Per-map layout: one shared instance, or N banks plus a merged
	// host view.
	replicaMaps := make([][]maps.Map, n)
	var hostMaps []maps.Map
	for id, spec := range prog.Maps {
		sh := ClassifyMap(pl, id)
		e.sharing = append(e.sharing, sh)
		if sh == SharingShared {
			m, err := maps.New(spec)
			if err != nil {
				return nil, fmt.Errorf("rss: map %q: %w", spec.Name, err)
			}
			for q := 0; q < n; q++ {
				replicaMaps[q] = append(replicaMaps[q], m)
			}
			hostMaps = append(hostMaps, m)
			continue
		}
		b, err := newBanked(spec, sh, n)
		if err != nil {
			return nil, fmt.Errorf("rss: map %q: %w", spec.Name, err)
		}
		e.bankeds[id] = b
		for q := 0; q < n; q++ {
			replicaMaps[q] = append(replicaMaps[q], b.bank(q))
		}
		hostMaps = append(hostMaps, maps.Synchronize(b))
	}
	e.host = maps.SetOf(hostMaps...)

	// Fast path: compile the closure chain once, bind it per replica.
	// Eligibility is probed with the trace stripped — replicas never
	// carry the tracer, so steered tracing does not force the
	// interpreter — but a fault campaign, protection, watchdog, stall
	// policy or a metrics registry does (the per-replica fallback
	// matrix in DESIGN.md).
	var fastProg *fastpath.Prog
	if cfg.FastPath {
		probe := cfg.Sim
		probe.Trace = nil
		if ok, _ := fastpath.Eligible(probe); ok {
			if p, err := fastpath.Compile(pl); err == nil {
				fastProg = p
				e.fastpath = true
			}
		}
	}

	for q := 0; q < n; q++ {
		simCfg := cfg.Sim
		// The tracer is single-writer; replicas must not share it. The
		// dispatcher (caller goroutine) keeps it for steer events.
		simCfg.Trace = nil
		if cfg.Sim.Faults != nil {
			// Each replica runs its own forked per-class fault streams:
			// same seeded campaign shape, independent draws, and the
			// shell-side injector loses no draws to the replicas.
			simCfg.Faults = cfg.Sim.Faults.Fork(int64(100 + q))
		}
		env := &vm.Env{Maps: maps.SetOf(replicaMaps[q]...)}
		var eng hwsim.Core
		if fastProg != nil {
			m, err := fastProg.NewMachine(simCfg, env)
			if err != nil {
				return nil, err
			}
			eng = m
		} else {
			sim, err := hwsim.NewWithEnv(pl, simCfg, env)
			if err != nil {
				return nil, err
			}
			eng = sim
		}
		e.replicas = append(e.replicas, &replica{
			idx:       q,
			sim:       eng,
			globalSeq: map[uint64]inflight{},
		})
		if cfg.Sim.Metrics != nil {
			e.completed = append(e.completed, cfg.Sim.Metrics.Counter(MetricCompleted(q)))
		}
	}
	return e, nil
}

// Queues returns the replica count.
func (e *Engine) Queues() int { return len(e.replicas) }

// Pipeline returns the compiled design the replicas execute.
func (e *Engine) Pipeline() *core.Pipeline { return e.pl }

// HostMaps is the host-side map view: shared instances directly,
// banked maps through their synchronized merged wrapper. Writes before
// Start broadcast to every bank; reads after Drain serve the merged
// per-CPU-style view.
func (e *Engine) HostMaps() *maps.Set { return e.host }

// Replica exposes one underlying interpreter simulator (tests, clock
// pinning). It returns nil when the replica runs the compiled fast
// path; ReplicaCore reaches the engine either way.
func (e *Engine) Replica(q int) *hwsim.Sim {
	sim, _ := e.replicas[q].sim.(*hwsim.Sim)
	return sim
}

// ReplicaCore exposes one replica's execution engine regardless of
// mode.
func (e *Engine) ReplicaCore(q int) hwsim.Core { return e.replicas[q].sim }

// FastPath reports whether the replicas run the compiled fast path
// (false means the interpreter serves, either because it was not
// requested or because the configuration fell back).
func (e *Engine) FastPath() bool { return e.fastpath }

// SetClock pins the helper-visible clock of every replica.
func (e *Engine) SetClock(fn func() uint64) {
	for _, r := range e.replicas {
		r.sim.SetClock(fn)
	}
}

// KeepData makes every replica retain result payloads (conformance).
func (e *Engine) KeepData(keep bool) {
	for _, r := range e.replicas {
		r.sim.KeepData(keep)
	}
}

// Sharing returns the layout class of map id.
func (e *Engine) Sharing(id int) Sharing {
	if id < 0 || id >= len(e.sharing) {
		return SharingShared
	}
	return e.sharing[id]
}

// Start seals host setup (first call), builds the dispatcher for the
// offered rate and launches one worker per replica plus the completion
// collector. onComplete, when non-nil, is invoked from the collector
// goroutine — per-queue completion order is preserved, queues
// interleave.
func (e *Engine) Start(cyclesPerPacket float64, onComplete func(Completion)) error {
	if e.running {
		return fmt.Errorf("rss: engine already running")
	}
	if !e.sealed {
		for _, b := range e.bankeds {
			b.seal()
		}
		e.sealed = true
	}
	disp, err := NewDispatcher(DispatcherConfig{
		Queues:          len(e.replicas),
		Batch:           e.cfg.batch(),
		Key:             e.cfg.Key,
		CyclesPerPacket: cyclesPerPacket,
		Trace:           e.cfg.Sim.Trace,
		Metrics:         e.cfg.Sim.Metrics,
	})
	if err != nil {
		return err
	}
	e.disp = disp
	e.onComplete = onComplete
	e.completions = make(chan []Completion, 2*len(e.replicas))
	e.running = true

	for _, r := range e.replicas {
		r.cycleBase = r.sim.Cycle()
		r.statsBase = r.sim.Stats()
		r.runErr = nil
		e.workerWG.Add(1)
		go e.worker(r, disp.Sink(r.idx))
	}
	e.collectWG.Add(1)
	go e.collect()
	return nil
}

// Offer classifies and enqueues one arrival; returns the chosen queue.
// Call only between Start and Drain, from one goroutine.
func (e *Engine) Offer(pkt []byte) int { return e.disp.Offer(pkt) }

// OfferBurst enqueues one arrival without advancing the pacing clock:
// the frame lands on the same due cycle as the next paced arrival, the
// way an ingress overflow burst piles onto one cycle.
func (e *Engine) OfferBurst(pkt []byte) int { return e.disp.OfferBurst(pkt) }

// worker drives one replica: it paces each item to its global due
// cycle, injects it, and streams completion batches to the collector.
// On a simulator error it keeps draining the channel (so the
// dispatcher never blocks) and reports the error at Drain.
func (e *Engine) worker(r *replica, in <-chan []Item) {
	defer e.workerWG.Done()
	sim := r.sim
	batch := e.cfg.batch()
	buf := make([]Completion, 0, batch)
	flush := func() {
		if len(buf) > 0 {
			e.completions <- buf
			buf = make([]Completion, 0, batch)
		}
	}
	sim.OnComplete(func(res hwsim.Result) {
		fl := r.globalSeq[res.Seq]
		delete(r.globalSeq, res.Seq)
		buf = append(buf, Completion{Queue: r.idx, Seq: fl.seq, PktLen: fl.pktLen, Res: res})
		if len(buf) >= batch {
			flush()
		}
	})
	defer sim.OnComplete(nil)

	for items := range in {
		if r.runErr != nil {
			continue // discard: keep the dispatcher unblocked
		}
		for _, it := range items {
			for sim.Cycle()-r.cycleBase < it.Due {
				if err := sim.Step(); err != nil {
					r.runErr = err
					break
				}
			}
			if r.runErr != nil {
				break
			}
			seq := sim.NextSeq()
			if sim.Inject(it.Data) {
				r.globalSeq[seq] = inflight{seq: it.Seq, pktLen: len(it.Data)}
			}
		}
	}
	if r.runErr == nil {
		// Drain: run the tail out. The bound is a backstop, not a
		// deadline — an idle replica exits on the first check.
		if err := sim.RunToCompletion(e.drainBound); err != nil {
			r.runErr = err
		}
	}
	flush()
	r.endCycles = sim.Cycle() - r.cycleBase
	r.endStats = sim.Stats()
}

// collect fans per-replica completion batches into the caller's
// callback and the per-queue metrics.
func (e *Engine) collect() {
	defer e.collectWG.Done()
	for batch := range e.completions {
		for _, c := range batch {
			if e.completed != nil {
				e.completed[c.Queue].Inc()
			}
			if e.onComplete != nil {
				e.onComplete(c)
			}
		}
	}
}

// Drain flushes the dispatcher, runs every replica to completion,
// joins the workers and the collector, and returns the session's
// aggregated statistics. The first replica error (lowest queue wins,
// deterministically) is returned after all goroutines have stopped.
func (e *Engine) Drain() (RunStats, error) {
	if !e.running {
		return RunStats{}, fmt.Errorf("rss: engine not running")
	}
	e.disp.Close()
	e.workerWG.Wait()
	close(e.completions)
	e.collectWG.Wait()
	e.running = false

	var rs RunStats
	rs.Arrivals = e.disp.Arrivals()
	perQueue := e.disp.PerQueue()
	var firstErr error
	for _, r := range e.replicas {
		qs := QueueStats{
			Steered: perQueue[r.idx],
			Cycles:  r.endCycles,
			Stats:   r.endStats.Delta(r.statsBase),
		}
		rs.PerQueue = append(rs.PerQueue, qs)
		if qs.Cycles > rs.MaxCycles {
			rs.MaxCycles = qs.Cycles
		}
		if r.runErr != nil && firstErr == nil {
			firstErr = fmt.Errorf("rss: queue %d: %w", r.idx, r.runErr)
		}
	}
	for _, b := range e.bankeds {
		rs.MergeConflicts += b.Conflicts()
	}
	rs.FallbackSteers = e.disp.Fallbacks()
	return rs, firstErr
}

// Unseal reopens host-broadcast mode on the banked maps (engine reuse
// after a live-update rollback re-seeds state).
func (e *Engine) Unseal() {
	for _, b := range e.bankeds {
		b.unseal()
	}
	e.sealed = false
}
