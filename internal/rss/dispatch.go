package rss

import (
	"fmt"

	"ehdl/internal/obs"
)

// Item is one classified arrival travelling from the dispatcher to a
// replica worker.
type Item struct {
	// Data is the frame.
	Data []byte
	// Due is the global arrival cycle the packet may enter its replica:
	// the dispatcher stamps arrival i with floor(i * cyclesPerPacket),
	// so every replica paces against the same simulated wall clock and
	// the results are independent of host goroutine scheduling.
	Due uint64
	// Seq is the global arrival index (across all queues).
	Seq uint64
}

// DispatcherConfig parameterises the classifier front-end.
type DispatcherConfig struct {
	// Queues is the number of pipeline replicas. Must be >= 1.
	Queues int
	// Batch is how many classified packets accumulate per queue before
	// the batch is handed to the worker (amortising channel operations,
	// the software analogue of the distributor's burst crossbar).
	// 0 means DefaultBatch.
	Batch int
	// Key overrides the Toeplitz key (nil selects DefaultKey).
	Key []byte
	// CyclesPerPacket is the arrival pacing in clock cycles (from the
	// offered rate). 0 means back-to-back (1 cycle per packet).
	CyclesPerPacket float64
	// Trace receives KindQueueSteer events. The dispatcher runs in the
	// caller's goroutine, so a shared (single-writer) tracer is safe
	// here even when the replica sims must not touch it.
	Trace *obs.Tracer
	// Metrics counts per-queue steering under rss.q<i>.steered.
	Metrics *obs.Registry
}

// DefaultBatch is the ingress batch size when the caller does not
// choose one: 64 packets, one MTU-ish burst, the same default DPDK rx
// bursts use.
const DefaultBatch = 64

// MetricSteered returns the per-queue steering counter name.
func MetricSteered(queue int) string { return fmt.Sprintf("rss.q%d.steered", queue) }

// MetricCompleted returns the per-queue completion counter name.
func MetricCompleted(queue int) string { return fmt.Sprintf("rss.q%d.completed", queue) }

// MetricFallback is the counter of non-IP/malformed frames steered to
// the queue-0 catch-all.
const MetricFallback = "rss.fallback_steers"

// Dispatcher classifies arrivals to queues and batches them toward the
// replica workers. It is single-goroutine: the shell's drive loop owns
// it.
type Dispatcher struct {
	hasher *Hasher
	ind    *Indirection
	batch  int
	cpp    float64

	trace   *obs.Tracer
	steered []*obs.Counter
	fallbck *obs.Counter

	arrivals uint64
	// paced counts only rate-paced arrivals: burst frames share the due
	// cycle of the next paced packet instead of advancing the clock.
	paced     uint64
	fallbacks uint64
	perQueue  []uint64
	buf      [][]Item
	sinks    []chan []Item
}

// NewDispatcher builds the classifier and its per-queue channels. The
// returned channels carry batches to the workers; their buffer depth
// (4 batches) lets the dispatcher run ahead without unbounded memory.
func NewDispatcher(cfg DispatcherConfig) (*Dispatcher, error) {
	h, err := NewHasher(cfg.Key)
	if err != nil {
		return nil, err
	}
	ind, err := NewIndirection(cfg.Queues)
	if err != nil {
		return nil, err
	}
	batch := cfg.Batch
	if batch <= 0 {
		batch = DefaultBatch
	}
	cpp := cfg.CyclesPerPacket
	if cpp <= 0 {
		cpp = 1
	}
	d := &Dispatcher{
		hasher:   h,
		ind:      ind,
		batch:    batch,
		cpp:      cpp,
		trace:    cfg.Trace,
		perQueue: make([]uint64, cfg.Queues),
	}
	for q := 0; q < cfg.Queues; q++ {
		d.buf = append(d.buf, make([]Item, 0, batch))
		d.sinks = append(d.sinks, make(chan []Item, 4))
		if cfg.Metrics != nil {
			d.steered = append(d.steered, cfg.Metrics.Counter(MetricSteered(q)))
		}
	}
	if cfg.Metrics != nil {
		d.fallbck = cfg.Metrics.Counter(MetricFallback)
	}
	return d, nil
}

// Queues returns the queue count.
func (d *Dispatcher) Queues() int { return d.ind.Queues() }

// Sink returns the batch channel feeding queue q.
func (d *Dispatcher) Sink(q int) <-chan []Item { return d.sinks[q] }

// Classify returns the queue a frame steers to without dispatching it.
// Malformed and non-IP frames fall back to queue 0, hash 0.
func (d *Dispatcher) Classify(pkt []byte) (queue int, hash uint32) {
	hash, ok := d.hasher.HashPacket(pkt)
	if !ok {
		return 0, 0
	}
	return d.ind.QueueFor(hash), hash
}

// Offer classifies one arrival, stamps its due cycle and queues it on
// its batch. Returns the chosen queue.
func (d *Dispatcher) Offer(pkt []byte) int {
	q := d.offer(pkt, true)
	return q
}

// OfferBurst is Offer without advancing the pacing clock: the frame
// arrives on the same cycle as the next paced packet (overflow bursts).
func (d *Dispatcher) OfferBurst(pkt []byte) int {
	return d.offer(pkt, false)
}

func (d *Dispatcher) offer(pkt []byte, pacedArrival bool) int {
	hash, ok := d.hasher.HashPacket(pkt)
	queue := 0
	if ok {
		queue = d.ind.QueueFor(hash)
	} else {
		hash = 0
		d.fallbacks++
		if d.fallbck != nil {
			d.fallbck.Inc()
		}
	}
	seq := d.arrivals
	due := uint64(float64(d.paced) * d.cpp)
	d.arrivals++
	if pacedArrival {
		d.paced++
	}
	d.perQueue[queue]++
	if d.trace.Enabled() {
		d.trace.Emit(obs.Event{
			Cycle: due,
			Kind:  obs.KindQueueSteer,
			Seq:   int64(seq),
			Stage: obs.NoStage,
			Map:   obs.NoMap,
			Aux:   uint64(queue),
			Aux2:  uint64(hash),
		})
	}
	if d.steered != nil {
		d.steered[queue].Inc()
	}
	d.buf[queue] = append(d.buf[queue], Item{Data: pkt, Due: due, Seq: seq})
	if len(d.buf[queue]) >= d.batch {
		d.flush(queue)
	}
	return queue
}

// Arrivals returns the number of packets offered so far.
func (d *Dispatcher) Arrivals() uint64 { return d.arrivals }

// Fallbacks returns how many arrivals took the queue-0 catch-all.
func (d *Dispatcher) Fallbacks() uint64 { return d.fallbacks }

// PerQueue returns a copy of the per-queue steering counts.
func (d *Dispatcher) PerQueue() []uint64 {
	return append([]uint64(nil), d.perQueue...)
}

func (d *Dispatcher) flush(queue int) {
	if len(d.buf[queue]) == 0 {
		return
	}
	b := d.buf[queue]
	d.buf[queue] = make([]Item, 0, d.batch)
	d.sinks[queue] <- b
}

// FlushAll pushes every partial batch out.
func (d *Dispatcher) FlushAll() {
	for q := range d.buf {
		d.flush(q)
	}
}

// Close flushes and closes the sinks; the workers drain and exit.
func (d *Dispatcher) Close() {
	d.FlushAll()
	for _, c := range d.sinks {
		close(c)
	}
}
