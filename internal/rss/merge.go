package rss

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"ehdl/internal/core"
	"ehdl/internal/ebpf"
	"ehdl/internal/maps"
)

// Sharing classifies how one map is laid out across pipeline replicas,
// mirroring the hardware choice between one shared BRAM block and N
// banked copies (and the kernel's per-CPU map trick on the host side).
type Sharing int

// Sharing classes.
const (
	// SharingShared keeps one instance visible to every replica. Safe
	// only when the data plane never writes the map: routing tables,
	// VIP/backend config, tunnel endpoints.
	SharingShared Sharing = iota
	// SharingCounter banks the map per replica and merges by summing
	// per-word deltas against the post-setup baseline — the per-CPU
	// counter-array model. Chosen when the data plane mutates the map
	// exclusively through the atomic-add primitive.
	SharingCounter
	// SharingFlow banks the map per replica and merges by unioning
	// entries that changed against the baseline. Because the dispatcher
	// pins each flow to one queue, a per-flow entry changes in at most
	// one bank; cross-bank conflicts are counted and resolved in favour
	// of the lowest queue so the merge stays deterministic.
	SharingFlow
)

func (s Sharing) String() string {
	switch s {
	case SharingShared:
		return "shared"
	case SharingCounter:
		return "counter"
	case SharingFlow:
		return "flow"
	}
	return fmt.Sprintf("sharing(%d)", int(s))
}

// ClassifyMap decides the sharing class of map id in a compiled
// pipeline. The rule reads the map block's access pattern:
//
//   - no data-plane writes at all → shared (one instance, N read ports);
//   - atomic-only mutation → banked counter (delta-sum merge);
//   - general writes → banked per-flow state (union merge).
//
// Maps the pipeline never touches (host-only scratch) are shared: only
// the host port accesses them, and the host is a single writer. LRU
// hash maps are never shared even when read-only, because their lookup
// path mutates the recency list.
func ClassifyMap(pl *core.Pipeline, id int) Sharing {
	mb := pl.MapBlockFor(id)
	if mb == nil {
		return SharingShared
	}
	if len(mb.WriteStages) > 0 {
		return SharingFlow
	}
	if len(mb.AtomicStages) > 0 || mb.UsesAtomics {
		return SharingCounter
	}
	if mb.Spec.Kind == ebpf.MapLRUHash {
		return SharingFlow
	}
	return SharingShared
}

// banked is the host view of one replicated map: N per-queue banks plus
// a baseline snapshot taken when the engine seals host setup. Before
// the seal every host write broadcasts to all banks (so each replica
// starts from identical state); after the seal reads serve the merged
// view. The engine wraps every banked map in maps.Synchronized before
// exposing it, so concurrent host-side access is serialised; the data
// plane reaches the banks directly through the per-replica sets and
// never takes that lock.
type banked struct {
	spec    ebpf.MapSpec
	banks   []maps.Map
	sharing Sharing

	sealed bool
	// base is the post-setup baseline: key → value copy. Deltas are
	// computed against it during the merge.
	base map[string][]byte

	// conflicts counts keys mutated by more than one bank — zero under
	// correct flow pinning; non-zero values surface steering bugs.
	conflicts uint64

	// mergeMu guards the memoised merge scratch (none today; reserved
	// for the iterate buffer reuse).
	mergeMu sync.Mutex
}

func newBanked(spec ebpf.MapSpec, sharing Sharing, queues int) (*banked, error) {
	b := &banked{spec: spec, sharing: sharing, base: map[string][]byte{}}
	for i := 0; i < queues; i++ {
		m, err := maps.New(spec)
		if err != nil {
			return nil, err
		}
		b.banks = append(b.banks, m)
	}
	return b, nil
}

// bank returns the instance replica q executes against.
func (b *banked) bank(q int) maps.Map { return b.banks[q] }

// seal snapshots the broadcast state as the merge baseline. Called once
// by the engine when the run starts.
func (b *banked) seal() {
	b.base = map[string][]byte{}
	b.banks[0].Iterate(func(k, v []byte) bool {
		b.base[string(k)] = append([]byte(nil), v...)
		return true
	})
	b.sealed = true
}

// unseal re-opens broadcast mode (engine restart after a live-update
// rollback).
func (b *banked) unseal() { b.sealed = false }

// Spec implements maps.Map.
func (b *banked) Spec() ebpf.MapSpec { return b.spec }

// Update implements maps.Map. Pre-seal it broadcasts; post-seal host
// writes also broadcast — the multi-queue analogue of writing a shared
// config value — and refresh the baseline so the write is not
// double-counted as a data-plane delta.
func (b *banked) Update(key, value []byte, flag maps.UpdateFlag) error {
	for i, m := range b.banks {
		if err := m.Update(key, value, flag); err != nil {
			// Roll nothing back: bank 0 failing first means none were
			// touched for flag errors (exist/no-exist checks are
			// deterministic across identically-seeded banks).
			if i == 0 {
				return err
			}
			return fmt.Errorf("rss: bank %d diverged on update: %w", i, err)
		}
	}
	if b.sealed {
		b.base[string(key)] = append([]byte(nil), value...)
	}
	return nil
}

// Delete implements maps.Map, broadcasting like Update.
func (b *banked) Delete(key []byte) error {
	for i, m := range b.banks {
		if err := m.Delete(key); err != nil {
			if i == 0 {
				return err
			}
			return fmt.Errorf("rss: bank %d diverged on delete: %w", i, err)
		}
	}
	if b.sealed {
		delete(b.base, string(key))
	}
	return nil
}

// Lookup implements maps.Map: pre-seal it reads bank 0 (all banks are
// identical), post-seal it serves the merged value. The returned slice
// is a private copy — the merged view has no stable storage to alias.
func (b *banked) Lookup(key []byte) ([]byte, bool) {
	if !b.sealed {
		v, ok := b.banks[0].Lookup(key)
		if !ok {
			return nil, false
		}
		return append([]byte(nil), v...), true
	}
	return b.mergedLookup(key)
}

func (b *banked) mergedLookup(key []byte) ([]byte, bool) {
	switch b.sharing {
	case SharingCounter:
		return b.counterMerge(key)
	default:
		return b.unionMerge(key)
	}
}

// counterMerge computes base + Σ(bankᵢ − base) per 64-bit word: the
// per-CPU counter sum. It is exact for atomic-add mutation whether the
// adds hit one bank (per-flow keys) or all of them (one global
// counter), because per-bank deltas are independent.
func (b *banked) counterMerge(key []byte) ([]byte, bool) {
	base, inBase := b.base[string(key)]
	var present bool
	var out []byte
	if b.spec.ValueSize%8 != 0 {
		// Odd-width values cannot be word-summed; fall back to the
		// union rule.
		return b.unionMerge(key)
	}
	words := b.spec.ValueSize / 8
	acc := make([]uint64, words)
	if inBase {
		present = true
		for w := 0; w < words; w++ {
			acc[w] = binary.LittleEndian.Uint64(base[w*8:])
		}
	}
	for _, m := range b.banks {
		v, ok := m.Lookup(key)
		if !ok {
			continue
		}
		present = true
		for w := 0; w < words; w++ {
			word := binary.LittleEndian.Uint64(v[w*8:])
			if inBase {
				word -= binary.LittleEndian.Uint64(base[w*8:])
			}
			acc[w] += word
		}
	}
	if !present {
		return nil, false
	}
	out = make([]byte, b.spec.ValueSize)
	for w := 0; w < words; w++ {
		binary.LittleEndian.PutUint64(out[w*8:], acc[w])
	}
	return out, true
}

// unionMerge resolves a key by delta-vs-baseline: the value comes from
// the lowest-indexed bank that changed it (created, rewrote or deleted
// it); with no changes the baseline value stands. Multi-bank changes
// increment the conflict counter — they cannot happen while flows stay
// pinned to queues.
func (b *banked) unionMerge(key []byte) ([]byte, bool) {
	base, inBase := b.base[string(key)]
	var (
		chosen  []byte
		present bool
		decided bool
		changes int
	)
	for _, m := range b.banks {
		v, ok := m.Lookup(key)
		changed := false
		switch {
		case ok && !inBase:
			changed = true
		case !ok && inBase:
			changed = true
		case ok && inBase && !bytes.Equal(v, base):
			changed = true
		}
		if !changed {
			continue
		}
		changes++
		if !decided {
			decided = true
			present = ok
			if ok {
				chosen = append([]byte(nil), v...)
			}
		}
	}
	if changes > 1 {
		b.mergeMu.Lock()
		b.conflicts++
		b.mergeMu.Unlock()
	}
	if decided {
		return chosen, present
	}
	if inBase {
		return append([]byte(nil), base...), true
	}
	return nil, false
}

// Iterate implements maps.Map over the merged key universe: baseline
// keys plus any keys created in a bank, each resolved through the merge
// rule. Keys are visited in sorted order so the walk is deterministic
// regardless of replica scheduling.
func (b *banked) Iterate(fn func(key, value []byte) bool) {
	if !b.sealed {
		b.banks[0].Iterate(fn)
		return
	}
	keys := map[string]struct{}{}
	for k := range b.base {
		keys[k] = struct{}{}
	}
	for _, m := range b.banks {
		m.Iterate(func(k, _ []byte) bool {
			keys[string(k)] = struct{}{}
			return true
		})
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		v, ok := b.mergedLookup([]byte(k))
		if !ok {
			continue
		}
		if !fn([]byte(k), v) {
			return
		}
	}
}

// Len implements maps.Map: live keys in the merged view.
func (b *banked) Len() int {
	if !b.sealed {
		return b.banks[0].Len()
	}
	n := 0
	b.Iterate(func(_, _ []byte) bool { n++; return true })
	return n
}

// Conflicts reports keys mutated by more than one bank observed during
// merged reads so far.
func (b *banked) Conflicts() uint64 {
	b.mergeMu.Lock()
	defer b.mergeMu.Unlock()
	return b.conflicts
}
