package rss

import (
	"encoding/binary"
	"reflect"
	"testing"

	"ehdl/internal/apps"
	"ehdl/internal/core"
	"ehdl/internal/ebpf"
	"ehdl/internal/maps"
	"ehdl/internal/pktgen"
)

func compileApp(t testing.TB, name string) *core.Pipeline {
	t.Helper()
	app, ok := apps.ByName(name)
	if !ok {
		t.Fatalf("unknown app %q", name)
	}
	prog, err := app.Program()
	if err != nil {
		t.Fatal(err)
	}
	pl, err := core.Compile(prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func setupApp(t testing.TB, name string, set *maps.Set) {
	t.Helper()
	app, _ := apps.ByName(name)
	if app.SetupHost != nil {
		if err := app.SetupHost(set); err != nil {
			t.Fatal(err)
		}
	}
}

// runEngine pushes count generated packets through an engine and
// drains it.
func runEngine(t testing.TB, e *Engine, gcfg pktgen.GeneratorConfig, count int) RunStats {
	t.Helper()
	if err := e.Start(1, nil); err != nil {
		t.Fatal(err)
	}
	gen := pktgen.NewGenerator(gcfg)
	for i := 0; i < count; i++ {
		e.Offer(gen.Next())
	}
	rs, err := e.Drain()
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func TestClassifyMapPerApp(t *testing.T) {
	cases := []struct {
		app  string
		want map[string]Sharing
	}{
		{"toy", map[string]Sharing{"stats": SharingCounter}},
		{"firewall", map[string]Sharing{"conn": SharingFlow, "fwstats": SharingCounter}},
		{"router", map[string]Sharing{"routes": SharingShared, "rtstats": SharingCounter}},
		{"loadbalancer", map[string]Sharing{"vips": SharingShared, "backends": SharingShared}},
	}
	for _, c := range cases {
		pl := compileApp(t, c.app)
		for id, spec := range pl.Prog.Maps {
			want, ok := c.want[spec.Name]
			if !ok {
				continue
			}
			if got := ClassifyMap(pl, id); got != want {
				t.Errorf("%s/%s: classified %v, want %v", c.app, spec.Name, got, want)
			}
		}
	}
}

// TestCounterMergeEqualsTotal drives the toy app (one global counter
// bumped per packet) across queue counts: the merged counter must equal
// the packet count regardless of how flows spread.
func TestCounterMergeEqualsTotal(t *testing.T) {
	const packets = 600
	gcfg := pktgen.GeneratorConfig{Flows: 32, PacketLen: 64, Seed: 11}
	for _, queues := range []int{1, 2, 4, 8} {
		pl := compileApp(t, "toy")
		e, err := NewEngine(pl, Config{Queues: queues})
		if err != nil {
			t.Fatal(err)
		}
		setupApp(t, "toy", e.HostMaps())
		rs := runEngine(t, e, gcfg, packets)

		var completed uint64
		for _, qs := range rs.PerQueue {
			completed += qs.Stats.Completed
		}
		if completed != packets {
			t.Fatalf("%d queues: completed %d of %d", queues, completed, packets)
		}
		stats, ok := e.HostMaps().ByName("stats")
		if !ok {
			t.Fatal("no stats map")
		}
		// Generated traffic is IPv4: toy bumps stats[1] (ETH_P_IP).
		key := []byte{1, 0, 0, 0}
		v, ok := stats.Lookup(key)
		if !ok {
			t.Fatalf("%d queues: stats[1] missing", queues)
		}
		if got := binary.LittleEndian.Uint64(v); got != packets {
			t.Fatalf("%d queues: merged counter %d, want %d", queues, got, packets)
		}
		if rs.MergeConflicts != 0 {
			t.Fatalf("%d queues: %d merge conflicts", queues, rs.MergeConflicts)
		}
	}
}

// TestEngineDeterminism runs the same traffic twice at 4 queues: the
// per-queue statistics and the merged map state must be bit-identical,
// independent of host goroutine scheduling.
func TestEngineDeterminism(t *testing.T) {
	const packets = 800
	gcfg := pktgen.GeneratorConfig{Flows: 48, PacketLen: 64, Seed: 3}
	run := func() (RunStats, *maps.SetSnapshot) {
		pl := compileApp(t, "firewall")
		e, err := NewEngine(pl, Config{Queues: 4})
		if err != nil {
			t.Fatal(err)
		}
		setupApp(t, "firewall", e.HostMaps())
		rs := runEngine(t, e, gcfg, packets)
		snap := e.HostMaps().Snapshot()
		return rs, snap
	}
	rs1, snap1 := run()
	rs2, snap2 := run()
	if !reflect.DeepEqual(rs1.PerQueue, rs2.PerQueue) {
		t.Fatalf("per-queue stats diverged:\n%+v\n%+v", rs1.PerQueue, rs2.PerQueue)
	}
	if !snap1.Equal(snap2) {
		t.Fatal("merged map state diverged between identical runs")
	}
}

// TestSharedMapStaysSingle checks read-only maps are not banked: a
// host write after setup is visible to every replica without a merge.
func TestSharedMapStaysSingle(t *testing.T) {
	pl := compileApp(t, "router")
	e, err := NewEngine(pl, Config{Queues: 4})
	if err != nil {
		t.Fatal(err)
	}
	for id, spec := range pl.Prog.Maps {
		if spec.Name != "routes" {
			continue
		}
		if e.Sharing(id) != SharingShared {
			t.Fatalf("routes classified %v, want shared", e.Sharing(id))
		}
		host, _ := e.HostMaps().ByName("routes")
		for q := 0; q < e.Queues(); q++ {
			rm, _ := e.Replica(q).Maps().ByName("routes")
			if rm != host {
				t.Fatalf("queue %d does not share the routes instance", q)
			}
		}
	}
}

// TestBankedBroadcastAndMerge exercises the banked map host contract
// directly: pre-seal writes land in every bank, post-seal reads merge.
func TestBankedBroadcastAndMerge(t *testing.T) {
	spec := ebpf.MapSpec{Name: "ctr", Kind: ebpf.MapArray, KeySize: 4, ValueSize: 8, MaxEntries: 4}
	b, err := newBanked(spec, SharingCounter, 3)
	if err != nil {
		t.Fatal(err)
	}
	key := make([]byte, 4)
	seed := make([]byte, 8)
	binary.LittleEndian.PutUint64(seed, 100)
	if err := b.Update(key, seed, maps.UpdateAny); err != nil {
		t.Fatal(err)
	}
	b.seal()

	// Each bank adds its own delta the way replica atomics would.
	for q, delta := range []uint64{5, 7, 11} {
		v, ok := b.bank(q).Lookup(key)
		if !ok {
			t.Fatalf("bank %d missing broadcast key", q)
		}
		binary.LittleEndian.PutUint64(v, 100+delta)
	}
	got, ok := b.Lookup(key)
	if !ok {
		t.Fatal("merged key missing")
	}
	if n := binary.LittleEndian.Uint64(got); n != 100+5+7+11 {
		t.Fatalf("counter merge = %d, want %d", n, 100+5+7+11)
	}
}

func TestBankedUnionMerge(t *testing.T) {
	spec := ebpf.MapSpec{Name: "conn", Kind: ebpf.MapHash, KeySize: 4, ValueSize: 4, MaxEntries: 16}
	b, err := newBanked(spec, SharingFlow, 2)
	if err != nil {
		t.Fatal(err)
	}
	k1 := []byte{1, 0, 0, 0}
	k2 := []byte{2, 0, 0, 0}
	k3 := []byte{3, 0, 0, 0}
	if err := b.Update(k1, []byte{9, 9, 9, 9}, maps.UpdateAny); err != nil {
		t.Fatal(err)
	}
	b.seal()

	// Bank 0 creates k2; bank 1 rewrites k1; nothing touches k3.
	if err := b.bank(0).Update(k2, []byte{2, 2, 2, 2}, maps.UpdateAny); err != nil {
		t.Fatal(err)
	}
	if err := b.bank(1).Update(k1, []byte{7, 7, 7, 7}, maps.UpdateAny); err != nil {
		t.Fatal(err)
	}

	if v, ok := b.Lookup(k1); !ok || v[0] != 7 {
		t.Fatalf("k1 merged %v %v, want rewrite from bank 1", v, ok)
	}
	if v, ok := b.Lookup(k2); !ok || v[0] != 2 {
		t.Fatalf("k2 merged %v %v, want creation from bank 0", v, ok)
	}
	if _, ok := b.Lookup(k3); ok {
		t.Fatal("k3 should be absent")
	}
	if b.Len() != 2 {
		t.Fatalf("merged Len = %d, want 2", b.Len())
	}

	// A bank deleting a baseline key removes it from the merged view.
	if err := b.bank(0).Delete(k1); err != nil {
		t.Fatal(err)
	}
	// Now k1 changed in both banks: deterministic lowest-queue-wins and
	// a conflict is recorded.
	if _, ok := b.Lookup(k1); ok {
		t.Fatal("k1 should follow bank 0's delete (lowest queue wins)")
	}
	if b.Conflicts() == 0 {
		t.Fatal("cross-bank mutation should count a conflict")
	}
}

// TestEngineRestart checks Start/Drain/Start reuse (the live-update
// swap path restarts sessions on retained state).
func TestEngineRestart(t *testing.T) {
	pl := compileApp(t, "toy")
	e, err := NewEngine(pl, Config{Queues: 2})
	if err != nil {
		t.Fatal(err)
	}
	setupApp(t, "toy", e.HostMaps())
	gcfg := pktgen.GeneratorConfig{Flows: 8, PacketLen: 64, Seed: 5}
	runEngine(t, e, gcfg, 100)
	runEngine(t, e, gcfg, 100)
	stats, _ := e.HostMaps().ByName("stats")
	v, ok := stats.Lookup([]byte{1, 0, 0, 0})
	if !ok {
		t.Fatal("stats[1] missing")
	}
	if got := binary.LittleEndian.Uint64(v); got != 200 {
		t.Fatalf("two sessions merged %d, want 200", got)
	}
}
