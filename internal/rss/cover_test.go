package rss

import (
	"strings"
	"testing"

	"ehdl/internal/ebpf"
	"ehdl/internal/maps"
	"ehdl/internal/obs"
	"ehdl/internal/pktgen"
)

func TestSharingStrings(t *testing.T) {
	cases := map[Sharing]string{
		SharingShared:  "shared",
		SharingCounter: "counter",
		SharingFlow:    "flow",
		Sharing(9):     "sharing(9)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestMetricNames(t *testing.T) {
	if got := MetricSteered(3); got != "rss.q3.steered" {
		t.Errorf("MetricSteered(3) = %q", got)
	}
	if got := MetricCompleted(2); got != "rss.q2.completed" {
		t.Errorf("MetricCompleted(2) = %q", got)
	}
}

// TestDispatcherMetered drives a metered dispatcher directly: steering
// counters, the fallback counter and the burst path (which must not
// advance the pacing clock).
func TestDispatcherMetered(t *testing.T) {
	reg := obs.NewRegistry()
	d, err := NewDispatcher(DispatcherConfig{Queues: 4, CyclesPerPacket: 3, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if d.Queues() != 4 {
		t.Fatalf("Queues() = %d", d.Queues())
	}
	gen := pktgen.NewGenerator(pktgen.GeneratorConfig{Flows: 16, PacketLen: 64, Seed: 3})
	for i := 0; i < 8; i++ {
		d.Offer(gen.Next())
	}
	// A burst frame shares the due cycle of the next paced arrival.
	burstQ := d.OfferBurst(gen.Next())
	d.Offer(gen.Next())
	d.OfferBurst([]byte{0xde, 0xad}) // malformed: queue-0 fallback
	d.Close()

	var items []Item
	for q := 0; q < 4; q++ {
		for batch := range d.Sink(q) {
			items = append(items, batch...)
		}
	}
	if len(items) != 11 {
		t.Fatalf("%d items dispatched, want 11", len(items))
	}
	var burstDue, pacedDue uint64
	for _, it := range items {
		if it.Seq == 8 {
			burstDue = it.Due
		}
		if it.Seq == 9 {
			pacedDue = it.Due
		}
	}
	if burstDue != pacedDue {
		t.Errorf("burst due %d, next paced due %d: bursts must pile onto the paced cycle", burstDue, pacedDue)
	}
	if d.Fallbacks() != 1 {
		t.Errorf("Fallbacks() = %d, want 1", d.Fallbacks())
	}
	if got, ok := reg.CounterValue(MetricFallback); !ok || got != 1 {
		t.Errorf("fallback metric = %d (%v), want 1", got, ok)
	}
	var steered uint64
	for q := 0; q < 4; q++ {
		v, _ := reg.CounterValue(MetricSteered(q))
		steered += v
	}
	if steered != 11 {
		t.Errorf("steered metrics sum to %d, want 11", steered)
	}
	if sum := d.PerQueue(); sum[burstQ] == 0 {
		t.Errorf("burst queue %d not counted in %v", burstQ, sum)
	}
}

// TestEngineAccessors exercises the small engine surface the bigger
// suites reach only indirectly: Pipeline, Sharing bounds, SetClock,
// KeepData, OfferBurst and Unseal-based reuse.
func TestEngineAccessors(t *testing.T) {
	pl := compileApp(t, "toy")
	e, err := NewEngine(pl, Config{Queues: 2})
	if err != nil {
		t.Fatal(err)
	}
	if e.Pipeline() != pl {
		t.Error("Pipeline() lost the compiled design")
	}
	if e.Sharing(-1) != SharingShared || e.Sharing(999) != SharingShared {
		t.Error("out-of-range Sharing should default to shared")
	}
	setupApp(t, "toy", e.HostMaps())
	e.SetClock(func() uint64 { return 42 })
	e.KeepData(true)

	if err := e.Start(1, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(1, nil); err == nil || !strings.Contains(err.Error(), "already running") {
		t.Errorf("double Start = %v, want already-running error", err)
	}
	gen := pktgen.NewGenerator(pktgen.GeneratorConfig{Flows: 8, PacketLen: 64, Seed: 5})
	for i := 0; i < 20; i++ {
		e.Offer(gen.Next())
	}
	e.OfferBurst(gen.Next())
	rs, err := e.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Arrivals != 21 {
		t.Errorf("arrivals = %d, want 21", rs.Arrivals)
	}
	if _, err := e.Drain(); err == nil {
		t.Error("Drain on a stopped engine should error")
	}

	// Unseal reopens broadcast mode: a host write must land in every
	// bank directly, and the next Start re-seals against it.
	e.Unseal()
	runEngine(t, e, pktgen.GeneratorConfig{Flows: 8, PacketLen: 64, Seed: 6}, 10)
}

// TestBankedHostWritesAfterSeal covers the host port of a sealed banked
// map: updates broadcast and refresh the baseline, deletes retract it,
// lookups of untouched and missing keys serve the baseline rule.
func TestBankedHostWritesAfterSeal(t *testing.T) {
	spec := ebpf.MapSpec{Name: "conn", Kind: ebpf.MapHash, KeySize: 4, ValueSize: 4, MaxEntries: 16}
	b, err := newBanked(spec, SharingFlow, 2)
	if err != nil {
		t.Fatal(err)
	}
	k1 := []byte{1, 0, 0, 0}
	k2 := []byte{2, 0, 0, 0}
	if err := b.Update(k1, []byte{1, 1, 1, 1}, maps.UpdateAny); err != nil {
		t.Fatal(err)
	}
	// Pre-seal reads serve bank 0.
	if v, ok := b.Lookup(k1); !ok || v[0] != 1 {
		t.Fatalf("pre-seal lookup %v %v", v, ok)
	}
	if _, ok := b.Lookup(k2); ok {
		t.Fatal("pre-seal lookup invented a key")
	}
	b.seal()

	// A sealed host write is a config push: all banks and the baseline.
	if err := b.Update(k2, []byte{2, 2, 2, 2}, maps.UpdateAny); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 2; q++ {
		if v, ok := b.bank(q).Lookup(k2); !ok || v[0] != 2 {
			t.Fatalf("bank %d missed the sealed broadcast: %v %v", q, v, ok)
		}
	}
	// Refreshing the baseline means the merge sees no data-plane delta.
	if v, ok := b.Lookup(k2); !ok || v[0] != 2 {
		t.Fatalf("sealed lookup %v %v", v, ok)
	}
	if b.Conflicts() != 0 {
		t.Fatalf("host broadcast counted %d conflicts", b.Conflicts())
	}

	if err := b.Delete(k1); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Lookup(k1); ok {
		t.Fatal("k1 survived a sealed host delete")
	}
	if err := b.Delete(k1); err == nil {
		t.Error("double delete should surface bank 0's error")
	}

	// Unseal: back to direct bank-0 reads.
	b.unseal()
	if v, ok := b.Lookup(k2); !ok || v[0] != 2 {
		t.Fatalf("post-unseal lookup %v %v", v, ok)
	}
}
