package rss

import (
	"bytes"
	"math/rand"
	"testing"

	"ehdl/internal/pktgen"
)

// FuzzRSSDispatch feeds arbitrary and malformed frames through the
// Toeplitz hasher and the dispatcher and checks the safety contract:
// no panic on any input, a stable hash for identical bytes, the
// malformed fallback always landing on queue 0, and — the invariant
// conformance rests on — a frame classifying to the same queue every
// time it is seen.
func FuzzRSSDispatch(f *testing.F) {
	// Seed with well-formed generator traffic plus every malformation
	// class applied to it, the corpus the chaos campaign uses.
	gen := pktgen.NewGenerator(pktgen.GeneratorConfig{Flows: 16, PacketLen: 64, Seed: 9})
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 8; i++ {
		pkt := gen.Next()
		f.Add(pkt)
		for _, kind := range pktgen.MalformKinds() {
			f.Add(pktgen.Malform(pkt, kind, rng))
		}
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 2*len(DefaultKey)))

	h, err := NewHasher(nil)
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, pkt []byte) {
		d, err := NewDispatcher(DispatcherConfig{Queues: 4, Batch: 4})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		go func() {
			// Drain the sinks so batched offers never block the fuzzer.
			for q := 0; q < d.Queues(); q++ {
				go func(c <-chan []Item) {
					for range c {
					}
				}(d.Sink(q))
			}
		}()

		h1, ok1 := h.HashPacket(pkt)
		h2, ok2 := h.HashPacket(pkt)
		if h1 != h2 || ok1 != ok2 {
			t.Fatalf("hash unstable: (%#x,%v) then (%#x,%v)", h1, ok1, h2, ok2)
		}

		q1, ch := d.Classify(pkt)
		q2, _ := d.Classify(pkt)
		if q1 != q2 {
			t.Fatalf("classification unstable: queue %d then %d", q1, q2)
		}
		if !ok1 && q1 != 0 {
			t.Fatalf("malformed frame steered to queue %d, want the queue-0 fallback", q1)
		}
		if ok1 && ch != h1 {
			t.Fatalf("Classify hash %#x != HashPacket %#x", ch, h1)
		}

		// Offer twice: both must steer to the classified queue and the
		// per-frame state must stay consistent (same flow never crosses
		// queues mid-run).
		if got := d.Offer(pkt); got != q1 {
			t.Fatalf("Offer steered to %d, Classify said %d", got, q1)
		}
		if got := d.Offer(append([]byte(nil), pkt...)); got != q1 {
			t.Fatalf("identical frame crossed queues: %d then %d", d.Offer(pkt), q1)
		}

		// Raw-tuple stability: hashing any prefix of the key-sized
		// window must not panic and must be repeatable.
		if h.Sum(pkt) != h.Sum(pkt) {
			t.Fatal("Sum unstable")
		}
	})
}
