// Package rss scales the generated pipeline past the single 250 MHz
// 1 pkt/cycle ceiling the way Section 5 of the eHDL paper sizes a
// 100GbE deployment: the design is replicated N times and a
// receive-side-scaling dispatcher spreads flows across the replicas.
//
// The package provides the three hardware pieces as host-side models: a
// Toeplitz flow hasher with an indirection table (the classifier), a
// batching dispatcher (the distributor crossbar) and an Engine that
// runs one independent hwsim pipeline per queue on its own goroutine
// with per-CPU-style banked maps and a deterministic post-run merge.
//
// The correctness contract mirrors real multi-queue NICs: because a
// flow hashes to exactly one queue for the lifetime of a run, per-flow
// behaviour (verdicts, byte mutations, per-flow map entries) is
// bit-identical to the single-queue machine, and global counters merge
// to the same totals the single pipeline would have accumulated.
package rss

import (
	"encoding/binary"
	"fmt"

	"ehdl/internal/ebpf"
	"ehdl/internal/pktgen"
)

// DefaultKey is the 40-byte Toeplitz key Microsoft's RSS specification
// ships and most NIC drivers (ixgbe, mlx5, Corundum's RSS example) use
// verbatim. Verification vectors for this key are published in the RSS
// spec, which the hasher tests check against.
var DefaultKey = []byte{
	0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2,
	0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
	0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4,
	0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
	0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
}

// minKeyBytes is the shortest usable key: the hash consumes a 32-bit
// window that slides one bit per input bit, so a key must cover at
// least the 12-byte IPv4 4-tuple plus the 4-byte window.
const minKeyBytes = 16

// Hasher computes the Toeplitz hash of flow tuples.
type Hasher struct {
	key []byte
}

// NewHasher builds a hasher from a key. A nil key selects DefaultKey.
func NewHasher(key []byte) (*Hasher, error) {
	if key == nil {
		key = DefaultKey
	}
	if len(key) < minKeyBytes {
		return nil, fmt.Errorf("rss: key must be at least %d bytes, got %d", minKeyBytes, len(key))
	}
	return &Hasher{key: append([]byte(nil), key...)}, nil
}

// MaxInputBytes returns the longest tuple the key can cover. Longer
// inputs are truncated to this length, keeping the hash total and
// stable for any input size (the fuzzer leans on this).
func (h *Hasher) MaxInputBytes() int { return len(h.key) - 4 }

// Sum computes the Toeplitz hash of input: for every set bit of the
// input (MSB first), XOR in the 32-bit key window starting at that bit
// position. This is the textbook serial formulation; hardware unrolls
// it into one XOR tree per output bit.
func (h *Hasher) Sum(input []byte) uint32 {
	if max := h.MaxInputBytes(); len(input) > max {
		input = input[:max]
	}
	var hash uint32
	// window is the 32-bit key view at the current bit offset; it
	// shifts left one bit per input bit, pulling the next key bit in
	// from the right.
	window := binary.BigEndian.Uint32(h.key)
	bitPos := 32
	for _, b := range input {
		for mask := byte(0x80); mask != 0; mask >>= 1 {
			if b&mask != 0 {
				hash ^= window
			}
			window <<= 1
			if bitPos < 8*len(h.key) {
				if h.key[bitPos/8]&(0x80>>(bitPos%8)) != 0 {
					window |= 1
				}
				bitPos++
			}
		}
	}
	return hash
}

// tupleBytes serialises a flow 5-tuple the way the RSS spec feeds it to
// the hash: source address, destination address, then source and
// destination port big-endian. Non-TCP/UDP IP traffic hashes addresses
// only, so fragments and odd protocols of one conversation stay
// together.
func tupleBytes(f pktgen.Flow, buf []byte) []byte {
	buf = buf[:0]
	buf = binary.BigEndian.AppendUint32(buf, f.SrcIP)
	buf = binary.BigEndian.AppendUint32(buf, f.DstIP)
	if f.Proto == ebpf.IPProtoTCP || f.Proto == ebpf.IPProtoUDP {
		buf = binary.BigEndian.AppendUint16(buf, f.SrcPort)
		buf = binary.BigEndian.AppendUint16(buf, f.DstPort)
	}
	return buf
}

// HashPacket classifies a raw frame: it parses the flow tuple and
// returns its Toeplitz hash. Malformed, truncated or non-IP frames
// return ok=false — the dispatcher steers those to queue 0, the same
// stable catch-all a hardware RSS block falls back to when header
// parsing fails.
func (h *Hasher) HashPacket(pkt []byte) (hash uint32, ok bool) {
	flow, err := pktgen.ParseFlow(pkt)
	if err != nil {
		return 0, false
	}
	var buf [12]byte
	return h.Sum(tupleBytes(flow, buf[:0])), true
}

// IndirectionSize is the number of indirection-table buckets, matching
// the 128-entry table of the Microsoft RSS spec and most 10-100G NICs.
const IndirectionSize = 128

// Indirection is the hash→queue table. The low 7 bits of the Toeplitz
// hash select a bucket; the bucket holds a queue index.
type Indirection struct {
	table  [IndirectionSize]int
	queues int
}

// NewIndirection builds the default equal-spread table: bucket i maps
// to queue i mod queues, the round-robin fill drivers program at reset.
func NewIndirection(queues int) (*Indirection, error) {
	if queues < 1 {
		return nil, fmt.Errorf("rss: need at least one queue, got %d", queues)
	}
	ind := &Indirection{queues: queues}
	for i := range ind.table {
		ind.table[i] = i % queues
	}
	return ind, nil
}

// Queues returns the number of queues the table spreads across.
func (ind *Indirection) Queues() int { return ind.queues }

// QueueFor maps a hash to its queue.
func (ind *Indirection) QueueFor(hash uint32) int {
	return ind.table[hash%IndirectionSize]
}
