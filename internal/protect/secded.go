package protect

import "math/bits"

// SECDED is the Hamming(72,64) single-error-correct, double-error-
// detect code: 64 data bits, 7 Hamming check bits and one overall
// parity bit, the exact code Xilinx BRAM primitives implement with
// their 8 spare bits per 64-bit word.
//
// Construction: data bits occupy codeword positions 1..71 that are not
// powers of two; check bit j guards every position with bit j set; the
// overall parity bit (stored as bit 7 of the check byte) makes the full
// 72-bit codeword even-parity, which disambiguates single from double
// errors.
type SECDED struct{}

// dataPos[i] is the codeword position of data bit i; posData is the
// inverse (0 for positions holding check bits).
var dataPos [64]int
var posData [72]int

func init() {
	for i := range posData {
		posData[i] = -1
	}
	i := 0
	for pos := 1; pos < 72 && i < 64; pos++ {
		if pos&(pos-1) == 0 { // power of two: a Hamming check bit
			continue
		}
		dataPos[i] = pos
		posData[pos] = i
		i++
	}
}

// Level implements Codec.
func (SECDED) Level() Level { return LevelECC }

// CheckBytesPerWord implements Codec: 8 check bits per word.
func (SECDED) CheckBytesPerWord() int { return 1 }

// encodeWord computes the check byte for one 64-bit data word.
func encodeWord(x uint64) byte {
	var check byte
	for i := 0; i < 64; i++ {
		if x>>i&1 == 0 {
			continue
		}
		check ^= byte(dataPos[i]) // accumulates p0..p6 in bits 0..6
	}
	check &= 0x7f
	// Overall parity over data plus the seven check bits.
	overall := byte(bits.OnesCount64(x)^bits.OnesCount8(check)) & 1
	return check | overall<<7
}

// Encode implements Codec.
func (c SECDED) Encode(value, check []byte) {
	for w := 0; w < Words(len(value)); w++ {
		c.EncodeWord(value, check, w)
	}
}

// EncodeWord implements Codec.
func (SECDED) EncodeWord(value, check []byte, w int) {
	check[w] = encodeWord(loadWord(value, w))
}

// CheckWord implements Codec: syndrome decode with in-place correction.
func (SECDED) CheckWord(value, check []byte, w int) WordStatus {
	x := loadWord(value, w)
	stored := check[w]
	fresh := encodeWord(x)
	syndrome := (stored ^ fresh) & 0x7f
	// Even overall parity across all 72 bits: data, 7 check bits and the
	// overall bit itself.
	odd := bits.OnesCount64(x)+bits.OnesCount8(stored) // stored includes bit 7
	if syndrome == 0 && odd%2 == 0 {
		return WordOK
	}
	if odd%2 == 1 {
		// Single-bit error at codeword position `syndrome` (0 means the
		// overall parity bit itself flipped).
		switch {
		case syndrome == 0:
			check[w] ^= 0x80
		case int(syndrome) < len(posData) && posData[syndrome] >= 0:
			x ^= 1 << posData[syndrome]
			storeWord(value, w, x)
		case syndrome&(syndrome-1) == 0:
			// One of the seven Hamming check bits flipped in storage.
			check[w] ^= syndrome
		default:
			// A syndrome pointing outside the codeword: at least two
			// upsets conspired; do not touch the data.
			return WordUncorrectable
		}
		return WordCorrected
	}
	// Non-zero syndrome with even overall parity: a double-bit error.
	return WordUncorrectable
}
