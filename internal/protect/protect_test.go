package protect

import (
	"math/rand"
	"testing"
)

// word injects value bytes for a single test word.
func testValue(x uint64) []byte {
	v := make([]byte, 8)
	storeWord(v, 0, x)
	return v
}

func TestSECDEDCleanWords(t *testing.T) {
	c := SECDED{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		v := testValue(rng.Uint64())
		check := make([]byte, 1)
		c.Encode(v, check)
		if st := c.CheckWord(v, check, 0); st != WordOK {
			t.Fatalf("clean word %x reported %v", v, st)
		}
	}
}

func TestSECDEDCorrectsEverySingleDataBit(t *testing.T) {
	c := SECDED{}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		x := rng.Uint64()
		for bit := 0; bit < 64; bit++ {
			v := testValue(x)
			check := make([]byte, 1)
			c.Encode(v, check)
			v[bit/8] ^= 1 << (bit % 8)
			if st := c.CheckWord(v, check, 0); st != WordCorrected {
				t.Fatalf("data bit %d flip: status %v", bit, st)
			}
			if got := loadWord(v, 0); got != x {
				t.Fatalf("data bit %d flip: corrected to %x, want %x", bit, got, x)
			}
			// The corrected word must verify clean.
			if st := c.CheckWord(v, check, 0); st != WordOK {
				t.Fatalf("data bit %d: recheck after correction: %v", bit, st)
			}
		}
	}
}

func TestSECDEDCorrectsEveryCheckBit(t *testing.T) {
	c := SECDED{}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		x := rng.Uint64()
		for bit := 0; bit < 8; bit++ {
			v := testValue(x)
			check := make([]byte, 1)
			c.Encode(v, check)
			check[0] ^= 1 << bit
			if st := c.CheckWord(v, check, 0); st != WordCorrected {
				t.Fatalf("check bit %d flip: status %v", bit, st)
			}
			if got := loadWord(v, 0); got != x {
				t.Fatalf("check bit %d flip corrupted data: %x want %x", bit, got, x)
			}
			if st := c.CheckWord(v, check, 0); st != WordOK {
				t.Fatalf("check bit %d: recheck after correction: %v", bit, st)
			}
		}
	}
}

func TestSECDEDDetectsDoubleBitErrors(t *testing.T) {
	c := SECDED{}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 500; trial++ {
		x := rng.Uint64()
		v := testValue(x)
		check := make([]byte, 1)
		c.Encode(v, check)
		b1 := rng.Intn(64)
		b2 := rng.Intn(64)
		for b2 == b1 {
			b2 = rng.Intn(64)
		}
		v[b1/8] ^= 1 << (b1 % 8)
		v[b2/8] ^= 1 << (b2 % 8)
		if st := c.CheckWord(v, check, 0); st != WordUncorrectable {
			t.Fatalf("double flip (%d,%d) on %x: status %v", b1, b2, x, st)
		}
	}
}

func TestSECDEDPartialFinalWord(t *testing.T) {
	// Values whose size is not a word multiple pad the final word with
	// zeros; single-bit flips anywhere in the stored bytes must correct.
	c := SECDED{}
	for _, size := range []int{1, 3, 4, 7, 9, 12, 13} {
		v := make([]byte, size)
		for i := range v {
			v[i] = byte(37*i + 11)
		}
		check := make([]byte, Words(size))
		c.Encode(v, check)
		for bit := 0; bit < size*8; bit++ {
			want := append([]byte(nil), v...)
			v[bit/8] ^= 1 << (bit % 8)
			if st := c.CheckWord(v, check, bit/8/WordBytes); st != WordCorrected {
				t.Fatalf("size %d bit %d: status %v", size, bit, st)
			}
			for i := range v {
				if v[i] != want[i] {
					t.Fatalf("size %d bit %d: byte %d not restored", size, bit, i)
				}
			}
		}
	}
}

func TestParityDetectsButCannotCorrect(t *testing.T) {
	c := Parity{}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 500; trial++ {
		x := rng.Uint64()
		v := testValue(x)
		check := make([]byte, 1)
		c.Encode(v, check)
		if st := c.CheckWord(v, check, 0); st != WordOK {
			t.Fatalf("clean parity word reported %v", st)
		}
		bit := rng.Intn(64)
		v[bit/8] ^= 1 << (bit % 8)
		if st := c.CheckWord(v, check, 0); st != WordUncorrectable {
			t.Fatalf("parity missed a single-bit flip: %v", st)
		}
		if got := loadWord(v, 0); got == x {
			t.Fatal("parity codec silently corrected — it must only detect")
		}
	}
}

func TestLevelRoundTrip(t *testing.T) {
	for _, l := range []Level{LevelNone, LevelParity, LevelECC} {
		got, err := ParseLevel(l.String())
		if err != nil || got != l {
			t.Fatalf("ParseLevel(%q) = %v, %v", l, got, err)
		}
	}
	if _, err := ParseLevel("bogus"); err == nil {
		t.Fatal("ParseLevel accepted garbage")
	}
	if ForLevel(LevelNone) != nil {
		t.Fatal("ForLevel(none) must be nil")
	}
	if ForLevel(LevelParity).Level() != LevelParity || ForLevel(LevelECC).Level() != LevelECC {
		t.Fatal("ForLevel returned the wrong codec")
	}
}

func TestCountersNote(t *testing.T) {
	var c Counters
	c.Note(WordOK)
	c.Note(WordCorrected)
	c.Note(WordUncorrectable)
	if c.Checked != 3 || c.Corrected != 1 || c.Uncorrectable != 1 {
		t.Fatalf("counters %+v", c)
	}
	sum := c.Add(c)
	if sum.Checked != 6 || sum.Corrected != 2 || sum.Uncorrectable != 2 {
		t.Fatalf("sum %+v", sum)
	}
}

// fakeStore is a deterministic Scrubbable for scheduler tests.
type fakeStore struct {
	words  int
	cursor int
	status []WordStatus // per-word outcome script, WordOK when exhausted
	seen   int
}

func (f *fakeStore) ScrubWord() (WordStatus, bool) {
	if f.words == 0 {
		return WordOK, true
	}
	st := WordOK
	if f.seen < len(f.status) {
		st = f.status[f.seen]
	}
	f.seen++
	f.cursor++
	if f.cursor >= f.words {
		f.cursor = 0
		return st, true
	}
	return st, false
}

func TestScrubberBudgetAndPassAccounting(t *testing.T) {
	a := &fakeStore{words: 3}
	b := &fakeStore{words: 2}
	s := NewScrubber(4, a, b)
	// 5 words per pass at 4 cycles/word: a pass completes every 20 ticks.
	var passes int
	for i := 0; i < 40; i++ {
		done, clean := s.Tick()
		if done {
			passes++
			if !clean {
				t.Fatal("clean pass reported dirty")
			}
		}
	}
	if passes != 2 {
		t.Fatalf("40 ticks at 4 cycles/word over 5 words: %d passes, want 2", passes)
	}
	st := s.Stats()
	if st.Words != 10 || st.Passes != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestScrubberDirtyPass(t *testing.T) {
	a := &fakeStore{words: 2, status: []WordStatus{WordCorrected, WordUncorrectable}}
	s := NewScrubber(1, a)
	var doneClean, doneDirty int
	for i := 0; i < 4; i++ {
		if done, clean := s.Tick(); done {
			if clean {
				doneClean++
			} else {
				doneDirty++
			}
		}
	}
	if doneDirty != 1 || doneClean != 1 {
		t.Fatalf("dirty %d clean %d, want 1 and 1 (pass after the upset is clean again)", doneDirty, doneClean)
	}
	st := s.Stats()
	if st.Corrected != 1 || st.Uncorrectable != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestScrubberEmpty(t *testing.T) {
	s := NewScrubber(1)
	if done, _ := s.Tick(); done {
		t.Fatal("scrubber with no stores completed a pass")
	}
}
