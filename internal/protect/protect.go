// Package protect implements the memory-protection codecs of the
// self-healing NIC: a Hamming(72,64) SECDED code and a per-word parity
// code over the 64-bit words of stored map values, plus the budgeted
// background scrubber that walks protected stores correcting latent
// single-event upsets before they accumulate into uncorrectable
// multi-bit errors.
//
// The package mirrors what an FPGA design gets almost for free: Xilinx
// block RAMs carry 8 spare bits per 64 data bits exactly so that a
// Hamming(72,64) code can ride along with every word, and production
// NIC pipelines pair that with a scrubber FSM that sweeps the BRAM
// address space during idle port cycles. Here the codecs operate on the
// byte-level map storage of internal/maps and the scrubber is driven by
// the simulator clock, so a protection campaign is as deterministic as
// the rest of the pipeline: same seed, same faults, same corrections.
//
// The package is a leaf: internal/maps wraps its stores with these
// codecs and internal/hwsim schedules the scrubber, never the other way
// around.
package protect

import "fmt"

// Level selects how a map's backing store is protected.
type Level int

// Protection levels, in increasing order of capability and cost.
const (
	// LevelNone stores raw words: upsets are silent.
	LevelNone Level = iota
	// LevelParity stores one parity bit per 64-bit word: single-bit
	// upsets are detected (never silently consumed) but not corrected.
	LevelParity
	// LevelECC stores a Hamming(72,64) SECDED code per word: single-bit
	// upsets are corrected in place, double-bit upsets are detected.
	LevelECC
)

func (l Level) String() string {
	switch l {
	case LevelNone:
		return "none"
	case LevelParity:
		return "parity"
	case LevelECC:
		return "ecc"
	}
	return fmt.Sprintf("level-%d", int(l))
}

// ParseLevel converts the textual flag form.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "none", "":
		return LevelNone, nil
	case "parity":
		return LevelParity, nil
	case "ecc":
		return LevelECC, nil
	}
	return LevelNone, fmt.Errorf("protect: unknown protection level %q (want none|parity|ecc)", s)
}

// WordStatus is the outcome of checking one protected word.
type WordStatus int

// Word check outcomes.
const (
	// WordOK: data and check bits agree.
	WordOK WordStatus = iota
	// WordCorrected: a single-bit error was corrected in place.
	WordCorrected
	// WordUncorrectable: the error exceeds the code's correction
	// capability (any parity mismatch; a double-bit error under ECC).
	WordUncorrectable
)

// WordBytes is the data word granularity of every codec: 64 bits,
// matching the BRAM physical word the FPGA protects.
const WordBytes = 8

// Words returns the number of protected words covering valueLen bytes.
// The final partial word is padded with zeros for encoding purposes.
func Words(valueLen int) int {
	return (valueLen + WordBytes - 1) / WordBytes
}

// Codec computes and checks per-word redundancy for a byte-addressed
// value. Implementations are stateless and safe to share across maps.
type Codec interface {
	// Level identifies the protection scheme.
	Level() Level
	// CheckBytesPerWord is the redundancy storage per 64-bit data word.
	CheckBytesPerWord() int
	// Encode fills check (len = Words(len(value)) * CheckBytesPerWord)
	// with the code for value.
	Encode(value, check []byte)
	// EncodeWord recomputes the check bytes of word w only.
	EncodeWord(value, check []byte, w int)
	// CheckWord verifies word w of value against its check bytes,
	// correcting value (and check) in place when the code allows it.
	CheckWord(value, check []byte, w int) WordStatus
}

// ForLevel returns the codec for a protection level, or nil for
// LevelNone.
func ForLevel(l Level) Codec {
	switch l {
	case LevelParity:
		return Parity{}
	case LevelECC:
		return SECDED{}
	}
	return nil
}

// Counters aggregates check outcomes for one protected store.
type Counters struct {
	// Checked counts word checks performed (lookup path and scrubber).
	Checked uint64
	// Corrected counts single-bit errors corrected in place.
	Corrected uint64
	// Uncorrectable counts detected errors beyond the code's reach.
	Uncorrectable uint64
}

// Add accumulates another counter snapshot.
func (c Counters) Add(o Counters) Counters {
	return Counters{
		Checked:       c.Checked + o.Checked,
		Corrected:     c.Corrected + o.Corrected,
		Uncorrectable: c.Uncorrectable + o.Uncorrectable,
	}
}

// Note records one word-check outcome.
func (c *Counters) Note(st WordStatus) {
	c.Checked++
	switch st {
	case WordCorrected:
		c.Corrected++
	case WordUncorrectable:
		c.Uncorrectable++
	}
}

// loadWord gathers word w of value, zero-padding past the end.
func loadWord(value []byte, w int) uint64 {
	var x uint64
	off := w * WordBytes
	for i := 0; i < WordBytes && off+i < len(value); i++ {
		x |= uint64(value[off+i]) << (8 * i)
	}
	return x
}

// storeWord scatters x back into word w of value, ignoring padding.
func storeWord(value []byte, w int, x uint64) {
	off := w * WordBytes
	for i := 0; i < WordBytes && off+i < len(value); i++ {
		value[off+i] = byte(x >> (8 * i))
	}
}
