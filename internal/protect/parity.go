package protect

import "math/bits"

// Parity is the detection-only codec: one parity bit per 64-bit word
// (stored in bit 0 of the check byte; the FPGA stores literally one
// spare bit). Any odd number of upset bits in a word is detected and
// reported as uncorrectable — the word is poisoned, never silently
// consumed — which is what forces the shell onto the checkpointed
// drain-and-restart path instead of the in-place correction ECC gets.
type Parity struct{}

// Level implements Codec.
func (Parity) Level() Level { return LevelParity }

// CheckBytesPerWord implements Codec.
func (Parity) CheckBytesPerWord() int { return 1 }

// Encode implements Codec.
func (c Parity) Encode(value, check []byte) {
	for w := 0; w < Words(len(value)); w++ {
		c.EncodeWord(value, check, w)
	}
}

// EncodeWord implements Codec.
func (Parity) EncodeWord(value, check []byte, w int) {
	check[w] = byte(bits.OnesCount64(loadWord(value, w))) & 1
}

// CheckWord implements Codec: detection only, no correction.
func (Parity) CheckWord(value, check []byte, w int) WordStatus {
	if byte(bits.OnesCount64(loadWord(value, w)))&1 == check[w]&1 {
		return WordOK
	}
	return WordUncorrectable
}
