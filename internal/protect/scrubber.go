package protect

// Scrubbable is one protected memory the scrubber sweeps word by word.
// internal/maps.Protected implements it; the interface lives here so
// the dependency points from maps to protect only.
type Scrubbable interface {
	// ScrubWord checks (and, when the codec allows, corrects) the next
	// word under an internal cursor, returning the outcome and whether
	// the cursor wrapped past the end of the store — i.e. this call
	// finished a full pass. An empty store wraps immediately with
	// WordOK.
	ScrubWord() (st WordStatus, wrapped bool)
}

// ScrubStats aggregates a scrubber's work.
type ScrubStats struct {
	// Words counts words checked by the scrubber (a subset of the
	// store's own Checked counter, which also sees the lookup path).
	Words uint64
	// Passes counts completed sweeps over every store.
	Passes uint64
	// Corrected and Uncorrectable count scrub-path outcomes.
	Corrected     uint64
	Uncorrectable uint64
}

// Scrubber walks a list of protected stores at a budgeted rate of one
// word every CyclesPerWord clock ticks — the model of the FPGA scrubber
// FSM that steals idle BRAM port cycles. Scheduling is a pure function
// of the tick count, so a protected simulation stays bit-reproducible.
type Scrubber struct {
	stores  []Scrubbable
	cycles  int // budget: cycles per scrubbed word
	credit  int
	idx     int // store currently under the cursor
	stats   ScrubStats
	cleanly bool // no uncorrectable outcome since the pass began
}

// NewScrubber builds a scrubber over the stores. cyclesPerWord <= 0
// defaults to 8 (one word per eight clock ticks).
func NewScrubber(cyclesPerWord int, stores ...Scrubbable) *Scrubber {
	if cyclesPerWord <= 0 {
		cyclesPerWord = 8
	}
	return &Scrubber{stores: stores, cycles: cyclesPerWord, cleanly: true}
}

// Stats returns a snapshot of the scrub counters.
func (s *Scrubber) Stats() ScrubStats { return s.stats }

// Tick advances the scrubber by one clock cycle. It returns (passDone,
// passClean): passDone is true on the tick that completes a sweep over
// every store, and passClean reports whether that whole pass saw no
// uncorrectable word — the condition under which the pipeline may take
// a new known-good checkpoint.
func (s *Scrubber) Tick() (passDone, passClean bool) {
	if len(s.stores) == 0 {
		return false, false
	}
	s.credit++
	if s.credit < s.cycles {
		return false, false
	}
	s.credit = 0
	st, wrapped := s.stores[s.idx].ScrubWord()
	s.stats.Words++
	switch st {
	case WordCorrected:
		s.stats.Corrected++
	case WordUncorrectable:
		s.stats.Uncorrectable++
		s.cleanly = false
	}
	if !wrapped {
		return false, false
	}
	s.idx++
	if s.idx < len(s.stores) {
		return false, false
	}
	s.idx = 0
	s.stats.Passes++
	clean := s.cleanly
	s.cleanly = true
	return true, clean
}
