// Microbenchmarks for the SECDED hot path: every protected map lookup
// and every scrubbed word pays one CheckWord, every map write pays one
// EncodeWord, so these are the per-packet cost of protection. Future
// PRs compare against these numbers before touching the codecs.
package protect

import (
	"math/rand"
	"testing"
)

func benchWords(n int) ([]byte, []byte) {
	rng := rand.New(rand.NewSource(9))
	value := make([]byte, n*WordBytes)
	rng.Read(value)
	check := make([]byte, n*(SECDED{}).CheckBytesPerWord())
	(SECDED{}).Encode(value, check)
	return value, check
}

func BenchmarkSECDEDEncodeWord(b *testing.B) {
	value, check := benchWords(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		(SECDED{}).EncodeWord(value, check, 0)
	}
}

func BenchmarkSECDEDCheckWordClean(b *testing.B) {
	value, check := benchWords(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if (SECDED{}).CheckWord(value, check, 0) != WordOK {
			b.Fatal("clean word failed")
		}
	}
}

func BenchmarkSECDEDCheckWordCorrecting(b *testing.B) {
	value, check := benchWords(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		value[i%8] ^= 1 << (i % 8)
		if (SECDED{}).CheckWord(value, check, 0) != WordCorrected {
			b.Fatal("flip not corrected")
		}
	}
}

func BenchmarkParityCheckWord(b *testing.B) {
	value, _ := benchWords(1)
	check := make([]byte, 1)
	(Parity{}).Encode(value, check)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if (Parity{}).CheckWord(value, check, 0) != WordOK {
			b.Fatal("clean word failed")
		}
	}
}

func BenchmarkSECDEDEncodeValue64B(b *testing.B) {
	value, check := benchWords(8)
	b.SetBytes(int64(len(value)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		(SECDED{}).Encode(value, check)
	}
}
