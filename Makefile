GO ?= go

.PHONY: all build test short vet race chaos bench check cover ci trace fuzz-smoke bench-baseline bench-check

all: build test

build:
	$(GO) build ./...

# The conformance suite, the observability layer, the live-update
# controller, the multi-queue path (rss + nic), the compiled fast path,
# the fleet control plane, the multi-tenant device and the durability
# layer rerun under the race detector even in the default gate: the
# tracer, registry, update machinery and the dispatcher/worker/collector
# goroutines are the pieces most likely to grow cross-goroutine users,
# the journal is the piece a crash must never be able to corrupt, and
# the fast path is the engine the RSS workers drive concurrently.
test:
	$(GO) test ./...
	$(GO) test -race ./internal/conformance/ ./internal/obs/ ./internal/liveupdate/ ./internal/rss/ ./internal/nic/ ./internal/fastpath/ ./internal/fleet/ ./internal/tenant/ ./internal/durable/

# Quick slice: skips the chaos campaign sweep and long fuzz runs.
short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Full fault-injection campaign: every app under every fault class,
# intensity sweep included (the tests that testing.Short skips), plus
# the SEU-heal recovery suite, the fleet-level chaos gate (device kills
# and silent corruption mid-rollout, rollback, drain/re-admit), the
# multi-tenant noisy-neighbor gate (aggressor under the full fault menu
# beside a victim whose verdicts must stay bit-identical to a solo run)
# and the kill-anywhere recovery gate (controller crashed at every
# journal commit point and rollout phase, then resumed — the recovered
# fleet report must be byte-identical to the uninterrupted run).
chaos:
	$(GO) test -race -run 'Chaos|Truncated|Malformed|Watchdog|Resilience|Recovery|Protect|Fleet|Rollback|Tenant|Journal|Resume|Replay|Torn' ./internal/...

# Coverage gate for the self-healing subsystem, the observability
# layer, the RSS dispatcher, the fleet control plane, the multi-tenant
# device and the durability layer: the protection codecs, the simulator
# that hosts the recovery machinery, the tracer/metrics/profiling
# package, the multi-queue front end, the fleet controller, the tenant
# classifier/policer/admission gate and the journal/snapshot codecs
# must stay above their floors (protect 90%, hwsim 75%, obs 85%, rss
# 85%, fastpath 85%, fleet 85%, tenant 85%, durable 85%). A gated
# package missing from the coverage output fails the gate — a silently
# dropped package must not read as a pass.
cover:
	@$(GO) test -cover ./internal/protect/ ./internal/hwsim/ ./internal/obs/ ./internal/rss/ ./internal/fastpath/ ./internal/fleet/ ./internal/tenant/ ./internal/durable/ | tee /tmp/ehdl-cover.txt
	@awk 'function gate(pkg, floor,    a) { seen[pkg] = 1; split($$5, a, "%"); \
	          if (a[1]+0 < floor) { printf "FAIL: internal/%s coverage %s%% < %d%%\n", pkg, a[1], floor; bad = 1 } } \
	      /internal\/protect/  { gate("protect", 90) } \
	      /internal\/hwsim/    { gate("hwsim", 75) } \
	      /internal\/obs/      { gate("obs", 85) } \
	      /internal\/rss/      { gate("rss", 85) } \
	      /internal\/fastpath/ { gate("fastpath", 85) } \
	      /internal\/fleet/    { gate("fleet", 85) } \
	      /internal\/tenant/   { gate("tenant", 85) } \
	      /internal\/durable/  { gate("durable", 85) } \
	      END { n = split("protect hwsim obs rss fastpath fleet tenant durable", want, " "); \
	            for (i = 1; i <= n; i++) if (!seen[want[i]]) { printf "FAIL: internal/%s missing from coverage output\n", want[i]; bad = 1 } \
	            exit bad }' /tmp/ehdl-cover.txt
	@echo "coverage gates passed"

# Short fuzz sweeps over the six adversarial surfaces: the vm-vs-hwsim
# conformance fuzzer, the three-way vm/interpreter/fast-path fuzzer
# (random frames against every app — one divergent verdict, map byte or
# ledger count fails), the migration schema/copy fuzzer, the RSS
# dispatcher fuzzer (malformed/truncated frames against the Toeplitz
# front end), the tenant classifier fuzzer (the same hostile frames
# against the VLAN/prefix steering — unclassifiable input must be
# quarantined and traced, never silently dropped) and the journal
# decoder fuzzer (torn tails, truncations and bit flips against the WAL
# framing — typed corruption errors or clean truncation, never a panic
# or a silent misparse). Ten seconds each — a smoke pass over the
# corpus plus fresh mutations, not a campaign.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzDifferential -fuzztime 10s ./internal/conformance/
	$(GO) test -run '^$$' -fuzz FuzzFastPath -fuzztime 10s ./internal/conformance/
	$(GO) test -run '^$$' -fuzz FuzzMigrate -fuzztime 10s ./internal/liveupdate/
	$(GO) test -run '^$$' -fuzz FuzzRSSDispatch -fuzztime 10s ./internal/rss/
	$(GO) test -run '^$$' -fuzz FuzzTenantClassifier -fuzztime 10s ./internal/tenant/
	$(GO) test -run '^$$' -fuzz FuzzJournalDecode -fuzztime 10s ./internal/durable/

# Benchmark-regression harness. bench-baseline re-records the committed
# baseline (do this deliberately, with the diff in review); bench-check
# re-measures and fails if any gated simulated-Mpps point drops more
# than 5% below BENCH_baseline.json.
bench-baseline:
	$(GO) run ./cmd/ehdl-bench -baseline-out BENCH_baseline.json

bench-check:
	$(GO) run ./cmd/ehdl-bench -baseline-check BENCH_baseline.json

# The full gate a PR must clear.
ci: vet build test race chaos cover fuzz-smoke bench-check

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Observability demo: a traced, metered firewall run. Leaves the
# cycle-level event stream in /tmp/ehdl-trace.jsonl.
trace:
	$(GO) run ./cmd/ehdl-sim -app firewall -packets 2000 -trace /tmp/ehdl-trace.jsonl -metrics
	@echo "trace written to /tmp/ehdl-trace.jsonl"

check: vet build test race
