GO ?= go

.PHONY: all build test short vet race chaos bench check cover ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Quick slice: skips the chaos campaign sweep and long fuzz runs.
short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Full fault-injection campaign: every app under every fault class,
# intensity sweep included (the tests that testing.Short skips), plus
# the SEU-heal recovery suite.
chaos:
	$(GO) test -race -run 'Chaos|Truncated|Malformed|Watchdog|Resilience|Recovery|Protect' ./internal/...

# Coverage gate for the self-healing subsystem: the protection codecs
# and the simulator that hosts the recovery machinery must stay above
# their floors (protect 90%, hwsim 75%).
cover:
	@$(GO) test -cover ./internal/protect/ ./internal/hwsim/ | tee /tmp/ehdl-cover.txt
	@awk '/internal\/protect/ { split($$5, a, "%"); if (a[1]+0 < 90) { print "FAIL: internal/protect coverage " a[1] "% < 90%"; exit 1 } } \
	      /internal\/hwsim/   { split($$5, a, "%"); if (a[1]+0 < 75) { print "FAIL: internal/hwsim coverage " a[1] "% < 75%"; exit 1 } }' /tmp/ehdl-cover.txt
	@echo "coverage gates passed"

# The full gate a PR must clear.
ci: vet build test race chaos cover

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

check: vet build test race
