GO ?= go

.PHONY: all build test short vet race chaos bench check cover ci trace fuzz-smoke

all: build test

build:
	$(GO) build ./...

# The conformance suite, the observability layer and the live-update
# controller rerun under the race detector even in the default gate:
# the tracer, registry and update machinery are the pieces most likely
# to grow cross-goroutine users.
test:
	$(GO) test ./...
	$(GO) test -race ./internal/conformance/ ./internal/obs/ ./internal/liveupdate/

# Quick slice: skips the chaos campaign sweep and long fuzz runs.
short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Full fault-injection campaign: every app under every fault class,
# intensity sweep included (the tests that testing.Short skips), plus
# the SEU-heal recovery suite.
chaos:
	$(GO) test -race -run 'Chaos|Truncated|Malformed|Watchdog|Resilience|Recovery|Protect' ./internal/...

# Coverage gate for the self-healing subsystem and the observability
# layer: the protection codecs, the simulator that hosts the recovery
# machinery, and the tracer/metrics/profiling package must stay above
# their floors (protect 90%, hwsim 75%, obs 85%).
cover:
	@$(GO) test -cover ./internal/protect/ ./internal/hwsim/ ./internal/obs/ | tee /tmp/ehdl-cover.txt
	@awk '/internal\/protect/ { split($$5, a, "%"); if (a[1]+0 < 90) { print "FAIL: internal/protect coverage " a[1] "% < 90%"; exit 1 } } \
	      /internal\/hwsim/   { split($$5, a, "%"); if (a[1]+0 < 75) { print "FAIL: internal/hwsim coverage " a[1] "% < 75%"; exit 1 } } \
	      /internal\/obs/     { split($$5, a, "%"); if (a[1]+0 < 85) { print "FAIL: internal/obs coverage " a[1] "% < 85%"; exit 1 } }' /tmp/ehdl-cover.txt
	@echo "coverage gates passed"

# Short fuzz sweeps over the two differential surfaces: the vm-vs-hwsim
# conformance fuzzer and the migration schema/copy fuzzer. Ten seconds
# each — a smoke pass over the corpus plus fresh mutations, not a
# campaign.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzDifferential -fuzztime 10s ./internal/conformance/
	$(GO) test -run '^$$' -fuzz FuzzMigrate -fuzztime 10s ./internal/liveupdate/

# The full gate a PR must clear.
ci: vet build test race chaos cover fuzz-smoke

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Observability demo: a traced, metered firewall run. Leaves the
# cycle-level event stream in /tmp/ehdl-trace.jsonl.
trace:
	$(GO) run ./cmd/ehdl-sim -app firewall -packets 2000 -trace /tmp/ehdl-trace.jsonl -metrics
	@echo "trace written to /tmp/ehdl-trace.jsonl"

check: vet build test race
