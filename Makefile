GO ?= go

.PHONY: all build test short vet race chaos bench check

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Quick slice: skips the chaos campaign sweep and long fuzz runs.
short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Full fault-injection campaign: every app under every fault class,
# intensity sweep included (the tests that testing.Short skips).
chaos:
	$(GO) test -race -run 'Chaos|Truncated|Malformed|Watchdog|Resilience' ./internal/...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

check: vet build test race
