module ehdl

go 1.22
